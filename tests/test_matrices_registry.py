import pytest

from repro.matrices import get_problem, problem_names
from repro.matrices.registry import LARGE_SUITE, REGISTRY, TABLE7_SUITE


class TestSuites:
    def test_table1_has_ten(self):
        assert len(problem_names("table1")) == 10

    def test_table6_has_four(self):
        assert len(problem_names("table6")) == 4

    def test_table7_members(self):
        assert set(TABLE7_SUITE) <= set(problem_names("all"))
        assert len(TABLE7_SUITE) == 6

    def test_unknown_suite(self):
        with pytest.raises(KeyError):
            problem_names("nope")


class TestGetProblem:
    def test_small_scale_sizes(self):
        p = get_problem("GRID150", "small")
        assert p.n == 16 * 16

    def test_paper_stats_attached(self):
        p = get_problem("BCSSTK15", "small")
        stats = p.meta["paper_stats"]
        assert stats.equations == 3948
        assert stats.factor_ops_millions == pytest.approx(165.0)

    def test_unknown_problem(self):
        with pytest.raises(KeyError):
            get_problem("NOSUCH", "small")

    def test_unknown_scale(self):
        with pytest.raises(KeyError):
            get_problem("GRID150", "huge")

    def test_all_small_problems_build(self):
        for name in problem_names("all"):
            p = get_problem(name, "small")
            assert p.n > 0
            assert p.A.shape == (p.n, p.n)

    def test_dense_paper_scale_matches_table(self):
        p = get_problem("DENSE1024", "paper")
        assert p.n == 1024
