import numpy as np

from repro.blocks import BlockPartition, BlockStructure, WorkModel, chol_flops
from repro.blocks.workmodel import OP_FIXED_COST
from repro.matrices import dense_matrix
from repro.symbolic import symbolic_factor


class TestCholFlops:
    def test_size_one(self):
        assert chol_flops(1) == 1  # one sqrt

    def test_matches_counts_formula(self):
        from repro.symbolic import factor_ops_from_counts

        for w in (2, 5, 16, 48):
            cc = np.arange(w, 0, -1)
            assert chol_flops(w) == factor_ops_from_counts(cc)


class TestWorkModel:
    def test_blocks_lower_triangular(self, grid12_pipeline):
        wm = grid12_pipeline[4]
        assert (wm.dest_I >= wm.dest_J).all()

    def test_work_formula(self, grid12_pipeline):
        wm = grid12_pipeline[4]
        assert np.array_equal(wm.work, wm.flops + OP_FIXED_COST * wm.nops)

    def test_aggregates_consistent(self, grid12_pipeline):
        wm = grid12_pipeline[4]
        assert wm.workI.sum() == wm.total_work
        assert wm.workJ.sum() == wm.total_work

    def test_dense_total_ops_count(self):
        """For a dense matrix of N panels: N BFACs, N(N-1)/2 BDIVs, and
        sum_k (N-k)(N-k+1)/2 BMODs."""
        p = dense_matrix(64)
        sf = symbolic_factor(p.A, None)
        part = BlockPartition(sf, 16)
        wm = WorkModel(BlockStructure(part))
        N = part.npanels
        expect = N + N * (N - 1) // 2 + sum(
            (N - k - 1) * (N - k) // 2 for k in range(N)
        )
        assert wm.total_ops == expect

    def test_dense_flops_close_to_simplicial(self):
        """Block flops ~ simplicial flops for a dense matrix (same arithmetic
        up to the blocked Cholesky's minor bookkeeping differences)."""
        p = dense_matrix(64)
        sf = symbolic_factor(p.A, None)
        wm = WorkModel(BlockStructure(BlockPartition(sf, 16)))
        assert abs(wm.total_flops - sf.factor_ops) / sf.factor_ops < 0.2

    def test_nmod_counts(self, grid12_pipeline):
        wm = grid12_pipeline[4]
        # every below-diagonal pair (I,J) of each panel K adds one mod
        total_mods = int(wm.nmod.sum())
        bs = wm.structure
        expect = sum(
            m * (m + 1) // 2
            for m in (bs.block_rows[k].shape[0] for k in range(bs.npanels))
        )
        assert total_mods == expect

    def test_block_index_lookup(self, grid12_pipeline):
        wm = grid12_pipeline[4]
        for t in range(0, wm.dest_I.shape[0], 7):
            b = wm.block_index(int(wm.dest_I[t]), int(wm.dest_J[t]))
            assert b == t

    def test_custom_fixed_cost(self, grid12_pipeline):
        bs = grid12_pipeline[3]
        wm0 = WorkModel(bs, op_fixed_cost=0)
        assert np.array_equal(wm0.work, wm0.flops)

    def test_diag_blocks_present(self, grid12_pipeline):
        wm = grid12_pipeline[4]
        diag = wm.dest_I == wm.dest_J
        assert int(diag.sum()) == wm.npanels
