import numpy as np
import pytest

from repro.matrices.hb import (
    parse_fortran_format,
    read_harwell_boeing,
    write_harwell_boeing,
)
from repro.matrices.spd import random_spd_sparse


class TestFortranFormat:
    def test_integer(self):
        assert parse_fortran_format("(16I5)") == (16, 5, "I")

    def test_real_e(self):
        assert parse_fortran_format("(3E26.18)") == (3, 26, "E")

    def test_scale_prefix(self):
        assert parse_fortran_format("(1P,3E25.16E3)") == (3, 25, "E")

    def test_d_descriptor(self):
        assert parse_fortran_format("(4D20.12)") == (4, 20, "D")

    def test_no_repeat(self):
        assert parse_fortran_format("(I8)") == (1, 8, "I")

    def test_invalid(self):
        with pytest.raises(ValueError):
            parse_fortran_format("(A40)")


class TestRoundTrip:
    def test_spd_roundtrip(self, tmp_path):
        A = random_spd_sparse(30, density=0.12, seed=0)
        path = tmp_path / "m.rsa"
        write_harwell_boeing(path, A)
        B = read_harwell_boeing(path)
        assert abs(A - B).max() < 1e-12

    def test_diag_only(self, tmp_path):
        from scipy import sparse

        A = sparse.diags([1.0, 2.0, 3.0]).tocsc()
        path = tmp_path / "d.rsa"
        write_harwell_boeing(path, A)
        B = read_harwell_boeing(path)
        assert np.allclose(B.toarray(), A.toarray())

    def test_title_preserved_in_header(self, tmp_path):
        A = random_spd_sparse(10, density=0.2, seed=1)
        path = tmp_path / "t.rsa"
        write_harwell_boeing(path, A, title="my matrix", key="KEY1")
        first = path.read_text().splitlines()[0]
        assert first.startswith("my matrix")
        assert first.rstrip().endswith("KEY1")


class TestReader:
    def test_pattern_symmetric(self, tmp_path):
        """A hand-written PSA file: values default to 1.0."""
        content = (
            f"{'pattern test':<72s}{'PTEST':<8s}\n"
            f"{2:14d}{1:14d}{1:14d}{0:14d}{0:14d}\n"
            f"{'PSA':<14s}{3:14d}{3:14d}{4:14d}{0:14d}\n"
            f"{'(4I5)':<16s}{'(4I5)':<16s}{'':<20s}{'':<20s}\n"
            "    1    3    4    5\n"
            "    1    3    2    3\n"
        )
        path = tmp_path / "p.psa"
        path.write_text(content)
        M = read_harwell_boeing(path)
        assert M[0, 0] == 1.0
        assert M[2, 0] == 1.0 and M[0, 2] == 1.0  # symmetric expansion
        assert M[1, 1] == 1.0 and M[2, 2] == 1.0

    def test_rejects_short_file(self, tmp_path):
        path = tmp_path / "x.rsa"
        path.write_text("too\nshort\n")
        with pytest.raises(ValueError):
            read_harwell_boeing(path)

    def test_rejects_complex(self, tmp_path):
        content = (
            f"{'c':<80s}\n"
            f"{1:14d}{1:14d}{0:14d}{0:14d}{0:14d}\n"
            f"{'CSA':<14s}{1:14d}{1:14d}{1:14d}{0:14d}\n"
            f"{'(1I5)':<16s}{'(1I5)':<16s}{'':<20s}{'':<20s}\n"
            "    1    1\n"
        )
        path = tmp_path / "c.csa"
        path.write_text(content)
        with pytest.raises(ValueError):
            read_harwell_boeing(path)
