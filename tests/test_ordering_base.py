import numpy as np
import pytest

from repro.matrices import grid2d_matrix
from repro.ordering import Ordering, order_problem, permute_spd


class TestOrdering:
    def test_inverse_computed(self):
        o = Ordering(np.array([2, 0, 1]))
        assert o.iperm.tolist() == [1, 2, 0]

    def test_rejects_non_permutation(self):
        with pytest.raises(ValueError):
            Ordering(np.array([0, 0, 1]))

    def test_n(self):
        assert Ordering(np.arange(7)).n == 7


class TestPermuteSpd:
    def test_entry_mapping(self):
        p = grid2d_matrix(4)
        rng = np.random.default_rng(0)
        perm = rng.permutation(p.n)
        B = permute_spd(p.A, perm)
        Ad = p.A.toarray()
        assert np.allclose(B.toarray(), Ad[np.ix_(perm, perm)])

    def test_symmetry_preserved(self):
        p = grid2d_matrix(5)
        B = permute_spd(p.A, np.random.default_rng(1).permutation(p.n))
        assert abs(B - B.T).max() < 1e-14

    def test_accepts_ordering_object(self):
        p = grid2d_matrix(3)
        o = Ordering(np.arange(p.n)[::-1].copy())
        B = permute_spd(p.A, o)
        assert np.allclose(B.toarray(), p.A.toarray()[::-1, ::-1])


class TestOrderProblem:
    def test_natural(self):
        p = grid2d_matrix(4)
        o = order_problem(p, "natural")
        assert np.array_equal(o.perm, np.arange(p.n))

    def test_dispatch_recommended(self):
        p = grid2d_matrix(4)  # recommends nd
        o = order_problem(p)
        assert o.method == "nd"

    def test_all_methods_give_permutations(self):
        from repro.util.arrays import is_permutation

        p = grid2d_matrix(6)
        for m in ("natural", "rcm", "nd", "mmd"):
            assert is_permutation(order_problem(p, m).perm), m

    def test_unknown_method(self):
        with pytest.raises(KeyError):
            order_problem(grid2d_matrix(3), "magic")
