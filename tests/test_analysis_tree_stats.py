import numpy as np
import pytest

from repro.analysis import tree_statistics, work_by_depth
from repro.matrices import dense_matrix, grid2d_matrix
from repro.ordering import order_problem
from repro.symbolic import symbolic_factor


class TestTreeStatistics:
    def test_dense_chain(self):
        p = dense_matrix(20)
        sf = symbolic_factor(p.A, None)
        stats = tree_statistics(sf)
        assert stats.height == 19  # a path
        assert stats.nleaves == 1
        assert stats.nsupernodes == 1
        assert stats.max_supernode == 20

    def test_grid_shallower_than_chain(self, grid12_pipeline):
        _, sf, *_ = grid12_pipeline
        stats = tree_statistics(sf)
        assert stats.height < sf.n - 1
        assert stats.nleaves > 1

    def test_as_rows(self, grid12_pipeline):
        _, sf, *_ = grid12_pipeline
        rows = tree_statistics(sf).as_rows()
        assert len(rows) == 6


class TestWorkByDepth:
    def test_sums_to_one(self, grid12_pipeline):
        _, sf, *_ = grid12_pipeline
        w = work_by_depth(sf)
        assert w.sum() == pytest.approx(1.0)

    def test_deepest_bins_light(self):
        """Work concentrates at shallow/middle depths (separators), not at
        the deepest leaves — the ID heuristic's premise."""
        p = grid2d_matrix(20)
        sf = symbolic_factor(p.A, order_problem(p, "nd"))
        w = work_by_depth(sf, nbins=4)
        assert w[-1] < w.max()
        assert np.argmax(w) < 3
