"""Shared fixtures: small problems with the full pipeline prepared."""

from __future__ import annotations

import numpy as np
import pytest

from repro.blocks import BlockPartition, BlockStructure, WorkModel
from repro.fanout import TaskGraph
from repro.matrices import grid2d_matrix, random_spd_sparse
from repro.ordering import order_problem
from repro.symbolic import symbolic_factor


@pytest.fixture(scope="session")
def grid12_pipeline():
    """A 12x12 grid problem, fully prepared with B=8."""
    problem = grid2d_matrix(12)
    sf = symbolic_factor(problem.A, order_problem(problem, "nd"))
    part = BlockPartition(sf, 8)
    structure = BlockStructure(part)
    wm = WorkModel(structure)
    tg = TaskGraph(wm)
    return problem, sf, part, structure, wm, tg


@pytest.fixture(scope="session")
def random_spd_pipeline():
    """An irregular random SPD problem (n=150), MMD-ordered, B=6."""
    from repro.matrices.problem import ProblemMatrix

    A = random_spd_sparse(150, density=0.04, seed=7)
    problem = ProblemMatrix("RAND150", A, recommended_ordering="mmd")
    sf = symbolic_factor(problem.A, order_problem(problem, "mmd"))
    part = BlockPartition(sf, 6)
    structure = BlockStructure(part)
    wm = WorkModel(structure)
    tg = TaskGraph(wm)
    return problem, sf, part, structure, wm, tg


def dense_cholesky_reference(A):
    """Dense lower Cholesky of a (sparse or dense) SPD matrix."""
    Ad = A.toarray() if hasattr(A, "toarray") else np.asarray(A)
    return np.linalg.cholesky(Ad)
