"""Tests of the experiment harness at small scale (fast, shape-checking)."""

import numpy as np
import pytest

from repro.experiments import clear_cache, prepare_problem
from repro.experiments import runner
from repro.experiments.table1 import run as table1
from repro.experiments.table2 import run as table2
from repro.experiments.table3 import run as table3
from repro.experiments.table4 import overall_balance_grid
from repro.experiments.table5 import performance_grid
from repro.experiments.table7 import run as table7
from repro.experiments.figure1 import run as figure1
from repro.experiments.ablations import run_block_size, run_zero_comm
from repro.mapping.heuristics import HEURISTICS


class TestPipeline:
    def test_prepare_caches(self):
        a = prepare_problem("GRID150", "small")
        b = prepare_problem("GRID150", "small")
        assert a is b
        clear_cache()
        c = prepare_problem("GRID150", "small")
        assert c is not a

    def test_prepared_consistency(self):
        prep = prepare_problem("BCSSTK15", "small")
        assert prep.taskgraph.npanels == prep.partition.npanels
        assert prep.factor_ops == prep.symbolic.factor_ops


class TestRunner:
    def test_pct(self):
        assert runner.pct(120, 100) == pytest.approx(20)
        assert runner.pct(80, 100) == pytest.approx(-20)
        assert runner.pct(5, 0) == 0.0

    def test_render(self):
        res = runner.ExperimentResult("T", ("a",), [[1.5]], notes="n")
        out = res.render()
        assert "T" in out and "1.50" in out and out.endswith("n")


class TestTables:
    def test_table1_rows(self):
        res = table1("small")
        assert len(res.rows) == 10
        for row in res.rows:
            assert row[1] > 0 and row[2] > 0

    def test_table2_balance_ordering(self):
        res = table2("small", P=16)
        for row in res.rows:
            name, r, c, d, o = row[0], row[1], row[2], row[3], row[4]
            assert o <= min(r, c, d) + 1e-12, name

    def test_table3_heuristics_beat_cyclic(self):
        res = table3("small", P=16)
        overall = {row[0]: row[4] for row in res.rows}
        assert overall["ID"] > overall["CY"]
        assert overall["DW"] > overall["CY"]

    def test_table4_grid_cyclic_zero(self):
        means = overall_balance_grid("small", 16, ("GRID150", "BCSSTK15"))
        assert means[("CY", "CY")] == pytest.approx(0.0)
        assert means[("ID", "CY")] > 0

    def test_table5_grid_runs(self):
        means = performance_grid("small", 16, ("BCSSTK15",))
        assert means[("CY", "CY")] == pytest.approx(0.0)
        assert len(means) == len(HEURISTICS) ** 2

    def test_table7_shape(self):
        res = table7("small", Ps=(16,))
        assert len(res.rows) == 6
        improvements = [row[4] for row in res.rows]
        # majority of large problems should improve under the heuristic
        assert sum(1 for i in improvements if i > 0) >= 3

    def test_figure1_invariant(self):
        res = figure1("small", Ps=(16,))
        for name, P, eff, bal in res.rows:
            assert eff <= bal + 1e-9, name


class TestAblations:
    def test_block_size_sweep(self):
        res = run_block_size("small", P=16, matrix="BCSSTK15",
                             sizes=(8, 16, 32))
        assert len(res.rows) == 3
        panels = [row[1] for row in res.rows]
        assert panels[0] >= panels[-1]  # smaller B -> more panels

    def test_zero_comm_gap_nonnegative(self):
        res = run_zero_comm("small", P=16)
        for name, eff, bound, gap in res.rows:
            assert gap >= -1e-9, name
