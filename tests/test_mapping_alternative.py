import numpy as np

from repro.mapping import (
    balance_metrics,
    heuristic_map,
    processor_aware_row_map,
    square_grid,
)


class TestProcessorAwareRowMap:
    def test_valid_cartesian_map(self, grid12_pipeline):
        wm = grid12_pipeline[4]
        g = square_grid(9)
        m = processor_aware_row_map(wm, g)
        assert m.mapI.shape == (wm.npanels,)
        assert m.mapI.max() < g.Pr and m.mapI.min() >= 0

    def test_cyclic_columns_by_default(self, grid12_pipeline):
        wm = grid12_pipeline[4]
        g = square_grid(9)
        m = processor_aware_row_map(wm, g, "CY")
        assert np.array_equal(m.mapJ, np.arange(wm.npanels) % g.Pc)

    def test_balance_at_least_basic_heuristic(self, grid12_pipeline):
        """§4.2: the processor-aware variant improves (or matches) the
        overall balance of the aggregate-row heuristic."""
        wm = grid12_pipeline[4]
        g = square_grid(9)
        basic = balance_metrics(wm, heuristic_map(wm, g, "DW", "CY")).overall
        alt = balance_metrics(wm, processor_aware_row_map(wm, g, "CY", "DW")).overall
        assert alt >= basic * 0.95  # allow tiny regressions on tiny problems

    def test_deterministic(self, random_spd_pipeline):
        wm = random_spd_pipeline[4]
        g = square_grid(4)
        a = processor_aware_row_map(wm, g).mapI
        b = processor_aware_row_map(wm, g).mapI
        assert np.array_equal(a, b)

    def test_label(self, grid12_pipeline):
        wm = grid12_pipeline[4]
        m = processor_aware_row_map(wm, square_grid(4), "CY", "DW")
        assert "procaware" in m.name
