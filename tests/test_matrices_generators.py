import numpy as np
from scipy import sparse

from repro.matrices import cube3d_matrix, dense_matrix, grid2d_matrix
from repro.matrices.spd import is_symmetric_pattern


def is_spd(A, n_probe=4):
    """Cheap SPD check: symmetric + positive smallest eigenvalue estimate."""
    if not is_symmetric_pattern(A, tol=1e-12):
        return False
    vals = np.linalg.eigvalsh(A.toarray())
    return vals.min() > 0


class TestDense:
    def test_shape_and_density(self):
        p = dense_matrix(32)
        assert p.n == 32
        assert p.nnz == 32 * 32

    def test_spd(self):
        assert is_spd(dense_matrix(24).A)

    def test_deterministic(self):
        a = dense_matrix(16, seed=3).A.toarray()
        b = dense_matrix(16, seed=3).A.toarray()
        assert np.array_equal(a, b)

    def test_name(self):
        assert dense_matrix(16).name == "DENSE16"
        assert dense_matrix(16, name="X").name == "X"


class TestGrid2D:
    def test_size(self):
        p = grid2d_matrix(7)
        assert p.n == 49
        assert p.coords.shape == (49, 2)

    def test_interior_stencil_9pt(self):
        p = grid2d_matrix(5)
        A = p.A.tocsr()
        # interior vertex (2,2) has 8 neighbours + diagonal
        v = 2 * 5 + 2
        assert A.indptr[v + 1] - A.indptr[v] == 9

    def test_corner_stencil(self):
        p = grid2d_matrix(5)
        A = p.A.tocsr()
        assert A.indptr[1] - A.indptr[0] == 4  # corner: 3 nbrs + diag

    def test_spd(self):
        assert is_spd(grid2d_matrix(6).A)

    def test_recommended_ordering(self):
        assert grid2d_matrix(4).recommended_ordering == "nd"


class TestCube3D:
    def test_size(self):
        p = cube3d_matrix(4)
        assert p.n == 64
        assert p.coords.shape == (64, 3)

    def test_interior_stencil_27pt(self):
        p = cube3d_matrix(5)
        A = p.A.tocsr()
        v = (2 * 5 + 2) * 5 + 2
        assert A.indptr[v + 1] - A.indptr[v] == 27

    def test_spd(self):
        assert is_spd(cube3d_matrix(4).A)

    def test_coords_match_adjacency(self):
        p = cube3d_matrix(3)
        A = p.A.tocoo()
        # all couplings are between vertices at Chebyshev distance <= 1
        d = np.abs(p.coords[A.row] - p.coords[A.col]).max(axis=1)
        assert d.max() <= 1
