import numpy as np

from repro.graph import AdjacencyGraph
from repro.matrices import cube3d_matrix, grid2d_matrix
from repro.matrices.spd import random_spd_sparse
from repro.ordering import nested_dissection, order_problem
from repro.symbolic import symbolic_factor
from repro.util.arrays import is_permutation


class TestNestedDissection:
    def test_permutation_geometric(self):
        p = grid2d_matrix(9)
        g = AdjacencyGraph.from_sparse(p.A)
        perm = nested_dissection(g, coords=p.coords)
        assert is_permutation(perm)

    def test_permutation_general(self):
        A = random_spd_sparse(80, density=0.05, seed=0)
        g = AdjacencyGraph.from_sparse(A)
        perm = nested_dissection(g)
        assert is_permutation(perm)

    def test_reduces_fill_vs_natural_grid(self):
        """ND is asymptotically better than the natural band ordering; at
        k=32 it already factors in about half the operations."""
        p = grid2d_matrix(32)
        nd = symbolic_factor(p.A, order_problem(p, "nd"))
        nat = symbolic_factor(p.A, None)
        assert nd.factor_nnz < nat.factor_nnz
        assert nd.factor_ops < 0.6 * nat.factor_ops

    def test_separator_ordered_last(self):
        """The final columns must form the top separator of the grid."""
        p = grid2d_matrix(8)
        g = AdjacencyGraph.from_sparse(p.A)
        perm = nested_dissection(g, coords=p.coords, leaf_size=4)
        top_sep = perm[-8:]
        # a geometric plane: all 8 vertices share one coordinate
        coords = p.coords[top_sep]
        assert (coords[:, 0] == coords[0, 0]).all() or (
            coords[:, 1] == coords[0, 1]
        ).all()

    def test_cube_ordering_scales(self):
        p = cube3d_matrix(6)
        sf = symbolic_factor(p.A, order_problem(p, "nd"))
        nat = symbolic_factor(p.A, None)
        assert sf.factor_ops < nat.factor_ops

    def test_leaf_size_one_works(self):
        p = grid2d_matrix(5)
        g = AdjacencyGraph.from_sparse(p.A)
        assert is_permutation(nested_dissection(g, coords=p.coords, leaf_size=1))

    def test_disconnected_graph(self):
        A = random_spd_sparse(60, density=0.015, seed=3)
        g = AdjacencyGraph.from_sparse(A)
        assert is_permutation(nested_dissection(g))
