import numpy as np
import pytest

from repro.blocks import BlockPartition, BlockStructure, WorkModel
from repro.blocks.variable import (
    VariableBlockPartition,
    stage_varying_policy,
    uniform_policy,
)
from repro.fanout import TaskGraph
from repro.matrices import grid2d_matrix
from repro.numeric import BlockCholesky
from repro.ordering import order_problem
from repro.symbolic import symbolic_factor


@pytest.fixture(scope="module")
def sf():
    p = grid2d_matrix(14)
    return symbolic_factor(p.A, order_problem(p, "nd"))


class TestVariableBlockPartition:
    def test_uniform_matches_fixed(self, sf):
        fixed = BlockPartition(sf, 8)
        var = VariableBlockPartition(sf, uniform_policy(8))
        assert np.array_equal(fixed.panel_ptr, var.panel_ptr)
        assert np.array_equal(fixed.panel_snode, var.panel_snode)

    def test_covers_columns(self, sf):
        var = VariableBlockPartition(sf, stage_varying_policy(16, 4, 2))
        assert var.panel_ptr[0] == 0 and var.panel_ptr[-1] == sf.n
        assert (np.diff(var.panel_ptr) > 0).all()

    def test_policy_respected(self, sf):
        var = VariableBlockPartition(sf, stage_varying_policy(16, 4, 2))
        snode_depth = sf.depth[sf.snode_ptr[:-1]]
        widths = np.diff(var.panel_ptr)
        for k in range(var.npanels):
            s = int(var.panel_snode[k])
            limit = 16 if snode_depth[s] > 2 else 4
            assert widths[k] <= limit

    def test_downstream_stack_runs(self, sf):
        """The whole pipeline must accept a variable partition unchanged."""
        var = VariableBlockPartition(sf, stage_varying_policy(12, 3, 3))
        wm = WorkModel(BlockStructure(var))
        tg = TaskGraph(wm)
        tg.validate()
        assert tg.ntasks > 0

    def test_numerically_correct(self, sf):
        var = VariableBlockPartition(sf, stage_varying_policy(12, 3, 3))
        bs = BlockStructure(var)
        L = BlockCholesky(bs, sf.A).factor().to_csc()
        assert abs(L @ L.T - sf.A).max() < 1e-10

    def test_degenerate_policy_clamped(self, sf):
        var = VariableBlockPartition(sf, lambda d, w: 0)  # clamped to 1
        assert var.npanels == sf.n
