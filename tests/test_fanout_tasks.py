import numpy as np

from repro.fanout import TaskGraph
from repro.fanout.tasks import BDIV, BFAC, BMOD


class TestTaskGraph:
    def test_validate_passes(self, grid12_pipeline):
        tg = grid12_pipeline[5]
        tg.validate()

    def test_task_counts(self, grid12_pipeline):
        wm, tg = grid12_pipeline[4], grid12_pipeline[5]
        n_bfac = int((tg.task_kind == BFAC).sum())
        n_bdiv = int((tg.task_kind == BDIV).sum())
        n_bmod = int((tg.task_kind == BMOD).sum())
        assert n_bfac == tg.npanels
        assert n_bdiv == tg.nblocks - tg.npanels
        assert n_bmod == int(wm.nmod.sum())
        assert tg.ntasks == wm.total_ops

    def test_flops_match_workmodel(self, grid12_pipeline):
        wm, tg = grid12_pipeline[4], grid12_pipeline[5]
        per_block = np.bincount(
            tg.task_block, weights=tg.task_flops, minlength=tg.nblocks
        )
        assert np.array_equal(per_block.astype(np.int64), wm.flops)

    def test_bmod_sources_same_panel(self, grid12_pipeline):
        tg = grid12_pipeline[5]
        mod = tg.task_kind == BMOD
        s1, s2 = tg.task_src1[mod], tg.task_src2[mod]
        both = s2 >= 0
        assert np.array_equal(
            tg.block_J[s1[both]], tg.block_J[s2[both]]
        )  # both sources live in panel K

    def test_bmod_dest_coordinates(self, grid12_pipeline):
        """BMOD(I,J,K): destination row = src1 row, dest col = src2 row."""
        tg = grid12_pipeline[5]
        mod = tg.task_kind == BMOD
        dest = tg.task_block[mod]
        s1 = tg.task_src1[mod]
        s2 = np.where(tg.task_src2[mod] >= 0, tg.task_src2[mod], s1)
        assert np.array_equal(tg.block_I[dest], tg.block_I[s1])
        assert np.array_equal(tg.block_J[dest], tg.block_I[s2])

    def test_dependents_csr_consistent(self, grid12_pipeline):
        tg = grid12_pipeline[5]
        # every BMOD appears once per distinct source in the CSR
        refs = np.zeros(tg.ntasks, dtype=int)
        for b in range(tg.nblocks):
            for t in tg.dep_tasks[tg.dep_ptr[b] : tg.dep_ptr[b + 1]]:
                refs[t] += 1
        mod = tg.task_kind == BMOD
        expected = np.where(tg.task_src2 >= 0, 2, 1)
        assert np.array_equal(refs[mod], expected[mod])
        assert (refs[~mod] == 0).all()

    def test_missing_init(self, grid12_pipeline):
        tg = grid12_pipeline[5]
        mod = tg.task_kind == BMOD
        assert (tg.task_missing_init[~mod] == 0).all()
        assert set(tg.task_missing_init[mod].tolist()) <= {1, 2}

    def test_subdiag_csr(self, grid12_pipeline):
        tg = grid12_pipeline[5]
        for k in range(tg.npanels):
            blocks = tg.subdiag_blocks[tg.subdiag_ptr[k] : tg.subdiag_ptr[k + 1]]
            assert (tg.block_J[blocks] == k).all()
            assert (tg.block_I[blocks] > k).all()

    def test_block_words_positive(self, grid12_pipeline):
        tg = grid12_pipeline[5]
        assert (tg.block_words > 0).all()
