"""The self-healing service: worker death mid-batch (hard and soft, on
both transports), per-job deadlines, the circuit breaker, job-id dedup,
client reconnect/retry, graceful drain, and the fault-plan CLI parser.

The acceptance bar throughout: every submitted job either completes —
with its survival path tagged in the record — or raises a typed
:class:`~repro.service.jobs.ServiceError` within its deadline; completed
factors are bitwise identical to the fault-free run; nothing leaks shm.
"""

import glob
import os
import signal
import time

import numpy as np
import pytest

from repro.matrices import grid2d_matrix
from repro.runtime import shm_available
from repro.runtime.faults import CrashSpec, FaultPlan, parse_fault_plan
from repro.service import (
    CircuitBreaker,
    DeadlineExceeded,
    FactorService,
    JobFailed,
    LoadgenConfig,
    RetryPolicy,
    ServiceClient,
    ServiceClosed,
    ServiceServer,
    ServiceUnavailable,
    run_loadgen,
)
from repro.service.jobs import FactorJob, JobHandle
from repro.solver import SparseCholesky

SVC_KW = dict(
    nprocs=2, ordering="nd", block_size=8,
    batch_timeout_s=120, stall_timeout_s=10.0,
)

#: A crash plan that hard-kills rank 1 after one task — the SIGKILL /
#: segfault stand-in (``os._exit`` without reporting or cleanup).
HARD_KILL = FaultPlan(seed=0, crash=(CrashSpec(1, 1, hard=True),))
SOFT_CRASH = FaultPlan(seed=0, crash=(CrashSpec(1, 1),))


@pytest.fixture(scope="module")
def grid_A():
    return grid2d_matrix(10).A.tocsc()


def _shifted(A, shift):
    M = A.copy()
    M.setdiag(M.diagonal() + shift)
    return M.tocsc()


def _cold_L(A):
    return SparseCholesky(A, ordering="nd", block_size=8).factor().L


def _bitwise(L, ref):
    return (
        np.array_equal(L.indptr, ref.indptr)
        and np.array_equal(L.indices, ref.indices)
        and np.array_equal(L.data, ref.data)
    )


def _shm_segments():
    return set(glob.glob("/dev/shm/psm_*"))


class TestPoolSelfHealing:
    """Worker death mid-batch: the pool heals on the survivors, affected
    jobs re-run (re-planned owners, re-shipped contexts), and the
    recovered factors stay bitwise identical — on both transports."""

    @pytest.mark.parametrize("transport", ["inline", "shm"])
    def test_hard_kill_mid_batch_recovers_bitwise(self, grid_A, transport):
        if transport == "shm" and not shm_available():
            pytest.skip("no POSIX shared memory")
        before = _shm_segments()
        mats = [_shifted(grid_A, 0.25 * (i + 1)) for i in range(4)]
        with FactorService(
            transport=transport, fault_plan=HARD_KILL, fault_jobs=(1,),
            batch_wait_s=0.05, max_batch=4, **SVC_KW,
        ) as svc:
            handles = [svc.submit(M) for M in mats]
            results = [h.result(120) for h in handles]
            # every job completed despite the mid-batch worker death
            for M, r in zip(mats, results):
                assert _bitwise(r.L, _cold_L(M))
            outcomes = {r.record.outcome for r in results}
            assert outcomes & {"recovered", "degraded_sequential"}
            assert svc.metrics.pool_restarts >= 1
            # P - f: the crew shrank, and health says so
            assert svc.pool.nprocs < svc.nprocs
            assert svc.pool.generation >= 2
            assert svc.health()["status"] == "degraded"
        assert _shm_segments() == before

    def test_soft_crash_retries_without_restart(self, grid_A):
        """A raising (soft-crash) worker ABORTs only its job; the pool
        survives and the retried job recovers bitwise."""
        M = _shifted(grid_A, 0.5)
        with FactorService(
            fault_plan=SOFT_CRASH, fault_jobs=(0,), **SVC_KW
        ) as svc:
            r = svc.factor(M)
            assert _bitwise(r.L, _cold_L(M))
            assert r.record.outcome == "recovered"
            assert r.record.attempts == 2
            assert svc.metrics.pool_restarts == 0
            assert svc.pool.generation == 1
            assert svc.health()["status"] == "ok"

    def test_sigkill_between_batches_heals(self, grid_A):
        """A real SIGKILL while the pool is idle: the next batch detects
        the dead rank, heals, and completes on the survivors."""
        with FactorService(**SVC_KW) as svc:
            r1 = svc.factor(grid_A)
            victim = svc.pool._procs[1]
            os.kill(victim.pid, signal.SIGKILL)
            victim.join(10)
            assert svc.pool.dead_ranks() == [1]
            M = _shifted(grid_A, 0.75)
            r2 = svc.factor(M)
            assert _bitwise(r1.L, _cold_L(grid_A))
            assert _bitwise(r2.L, _cold_L(M))
            assert r2.record.outcome in ("recovered", "degraded_sequential")
            assert svc.pool.nprocs == 1
            assert svc.health()["pool"]["alive"]

    def test_heartbeats_reported_in_health(self, grid_A):
        with FactorService(**SVC_KW) as svc:
            svc.factor(grid_A)
            ages = svc.health()["pool"]["heartbeat_age_s"]
            assert set(ages) == {"0", "1"}
            assert all(age >= 0.0 for age in ages.values())


class TestDeadlines:
    def test_expired_job_is_typed_and_batch_unharmed(self, grid_A):
        """A job whose deadline passes in the queue raises the typed
        error; its batch-mate completes bitwise."""
        M = _shifted(grid_A, 1.0)
        with FactorService(batch_wait_s=0.05, **SVC_KW) as svc:
            svc.factor(grid_A)  # warm the pattern
            doomed = svc.submit(_shifted(grid_A, 2.0), deadline_s=1e-4)
            mate = svc.submit(M)
            with pytest.raises(DeadlineExceeded):
                doomed.result(120)
            assert _bitwise(mate.result(120).L, _cold_L(M))
            assert svc.metrics.expired >= 1

    def test_result_wait_bounded_by_deadline(self):
        """``JobHandle.result()`` never outlives the job's budget, even
        when the server goes silent (nothing ever completes this job)."""
        job = FactorJob(job_id="silent", A=grid2d_matrix(6).A.tocsc(),
                        deadline_s=0.2)
        handle = JobHandle(job)
        t0 = time.monotonic()
        with pytest.raises(DeadlineExceeded):
            handle.result()  # no timeout arg: the deadline is the bound
        assert time.monotonic() - t0 < 5.0

    def test_default_deadline_applies(self, grid_A):
        with FactorService(default_deadline_s=1e-4, **SVC_KW) as svc:
            with pytest.raises(DeadlineExceeded):
                svc.factor(grid_A)
            # the client-side deadline fires first; the dispatcher's
            # record lands moments later
            deadline = time.monotonic() + 30.0
            while not svc.metrics.records and time.monotonic() < deadline:
                time.sleep(0.01)
            rec = svc.metrics.records[-1]
            assert rec.status == "expired"
            assert rec.deadline_s == pytest.approx(1e-4)


class _FakeClock:
    def __init__(self):
        self.now = 100.0

    def __call__(self):
        return self.now


class TestCircuitBreaker:
    def test_threshold_opens_and_cooldown_half_opens(self):
        clk = _FakeClock()
        b = CircuitBreaker(threshold=2, cooldown_s=5.0, clock=clk)
        assert b.allow()
        b.record_failure()
        assert b.state == CircuitBreaker.CLOSED
        b.record_failure()
        assert b.state == CircuitBreaker.OPEN
        assert b.trips == 1
        assert not b.allow()
        clk.now += 5.0
        assert b.allow()  # the half-open probe
        assert b.state == CircuitBreaker.HALF_OPEN
        assert not b.allow()  # exactly one probe in flight

    def test_probe_outcome_decides(self):
        clk = _FakeClock()
        b = CircuitBreaker(threshold=1, cooldown_s=1.0, clock=clk)
        b.record_failure()
        clk.now += 1.0
        assert b.allow()
        b.record_failure()  # the probe failed: straight back open
        assert b.state == CircuitBreaker.OPEN
        assert b.trips == 2
        clk.now += 1.0
        assert b.allow()
        b.record_success()
        assert b.state == CircuitBreaker.CLOSED
        assert b.allow()

    def test_success_resets_failure_streak(self):
        b = CircuitBreaker(threshold=3, cooldown_s=1.0)
        b.record_failure()
        b.record_failure()
        b.record_success()
        b.record_failure()
        b.record_failure()
        assert b.state == CircuitBreaker.CLOSED

    def test_disabled_breaker_never_opens(self):
        b = CircuitBreaker(threshold=0, cooldown_s=1.0)
        for _ in range(10):
            b.record_failure()
        assert b.allow() and b.state == CircuitBreaker.CLOSED

    def test_service_breaker_degrades_then_recovers(self, grid_A):
        """End to end: a persistent first-batch kill trips a
        threshold-1 breaker; the stream continues degraded-sequential
        (still bitwise); after the cooldown a probe closes it again."""
        mats = [_shifted(grid_A, 0.2 * (i + 1)) for i in range(3)]
        with FactorService(
            fault_plan=HARD_KILL, fault_jobs=(0,),
            breaker_threshold=1, breaker_cooldown_s=0.3,
            max_job_attempts=1, batch_wait_s=0.05, max_batch=4, **SVC_KW,
        ) as svc:
            handles = [svc.submit(M) for M in mats]
            results = [h.result(120) for h in handles]
            for M, r in zip(mats, results):
                assert _bitwise(r.L, _cold_L(M))
            assert svc.breaker.trips >= 1
            assert svc.metrics.degraded >= 1
            assert svc.health()["status"] == "degraded"
            time.sleep(0.4)  # past the cooldown: next batch is the probe
            r = svc.factor(_shifted(grid_A, 9.0))
            assert r.record.outcome in ("clean", "recovered")
            assert svc.breaker.state == CircuitBreaker.CLOSED


class TestRetryPolicy:
    def test_seeded_backoff_is_deterministic_and_capped(self):
        a = RetryPolicy(retries=5, base_s=0.05, cap_s=0.2, seed=3)
        b = RetryPolicy(retries=5, base_s=0.05, cap_s=0.2, seed=3)
        delays = [a.delay(k) for k in range(5)]
        assert delays == [b.delay(k) for k in range(5)]
        assert all(0.0 < d <= 0.2 for d in delays)

    def test_should_retry_respects_budget_and_retryable(self):
        p = RetryPolicy(retries=2)
        assert p.should_retry(0, ServiceUnavailable("down"))
        assert p.should_retry(1, ServiceUnavailable("down"))
        assert not p.should_retry(2, ServiceUnavailable("down"))
        # not retryable: the budget is spent / the job itself failed
        assert not p.should_retry(0, DeadlineExceeded("late"))
        assert not p.should_retry(0, JobFailed("j", "boom"))


class TestDedup:
    def test_completed_job_id_returns_cached_result(self, grid_A):
        with FactorService(**SVC_KW) as svc:
            r1 = svc.factor(grid_A, job_id="job-42")
            r2 = svc.factor(grid_A, job_id="job-42")
            assert r2 is r1  # the very same result object, no re-run
            assert svc.metrics.deduped == 1
            assert svc.metrics.submitted == 1

    def test_inflight_job_id_returns_same_handle(self, grid_A):
        with FactorService(**SVC_KW) as svc:
            svc.factor(grid_A)  # make sure the dispatcher is warm
            job = FactorJob(job_id="inflight", A=grid_A)
            stuck = JobHandle(job)
            svc._outstanding["inflight"] = stuck
            assert svc.submit(grid_A, job_id="inflight") is stuck
            assert svc.metrics.deduped == 1
            svc._retire("inflight")

    def test_failed_jobs_are_not_cached(self, grid_A):
        """A retry of a failed job_id must re-run, not replay the
        failure."""
        with FactorService(**SVC_KW) as svc:
            r = svc.factor(grid_A)
            with pytest.raises(JobFailed):
                svc.factor(pattern_id=r.pattern_id,
                           values=grid_A.data[:-3], job_id="flaky")
            r2 = svc.factor(grid_A, job_id="flaky")
            assert _bitwise(r2.L, _cold_L(grid_A))
            assert svc.metrics.deduped == 0

    def test_dedup_capacity_bounds_the_table(self, grid_A):
        with FactorService(dedup_capacity=2, **SVC_KW) as svc:
            for i in range(4):
                svc.factor(_shifted(grid_A, 0.1 * (i + 1)),
                           job_id=f"job-{i}")
            assert len(svc._completed) == 2
            assert set(svc._completed) == {"job-2", "job-3"}


class TestClientResilience:
    def test_connect_refused_is_typed_and_prompt(self):
        """Satellite regression: a down server is a typed, retryable
        error under the configured timeout — never an unbounded hang."""
        import socket as socket_mod

        probe = socket_mod.socket()
        probe.bind(("127.0.0.1", 0))
        dead_port = probe.getsockname()[1]
        probe.close()  # nothing listens there now
        t0 = time.monotonic()
        with pytest.raises(ServiceUnavailable) as exc:
            ServiceClient(address=("127.0.0.1", dead_port), timeout=2.0)
        assert time.monotonic() - t0 < 10.0
        assert exc.value.retryable

    def test_connect_timeout_none_still_works(self, grid_A):
        """timeout=None means unbounded, not broken: connect and factor
        against a live server must succeed."""
        with FactorService(**SVC_KW) as svc:
            server = ServiceServer(svc, port=0).start_background()
            try:
                with ServiceClient(address=server.address,
                                   timeout=None) as client:
                    assert client.ping()
                    r = client.factor(grid_A, timeout=120)
                    assert _bitwise(r.L, _cold_L(grid_A))
            finally:
                server.close()

    def test_reconnect_and_retry_after_broken_socket(self, grid_A):
        """A broken connection surfaces as retryable ServiceUnavailable;
        with a RetryPolicy the client reconnects and the request
        succeeds (idempotent thanks to server-side job-id dedup)."""
        with FactorService(**SVC_KW) as svc:
            server = ServiceServer(svc, port=0).start_background()
            try:
                retry = RetryPolicy(retries=2, base_s=0.01, seed=0)
                with ServiceClient(address=server.address,
                                   retry=retry) as client:
                    client.factor(grid_A, timeout=120)
                    client._sock.close()  # snap the pipe under the client
                    r = client.factor(grid_A, timeout=120)
                    assert _bitwise(r.L, _cold_L(grid_A))
                    assert client.retry_count >= 1
                # without a policy the same breakage is a typed error
                with ServiceClient(address=server.address) as bare:
                    bare.ping()
                    bare._sock.close()
                    with pytest.raises(ServiceUnavailable):
                        bare.ping()
            finally:
                server.close()

    def test_socket_retry_dedups_on_job_id(self, grid_A):
        with FactorService(**SVC_KW) as svc:
            server = ServiceServer(svc, port=0).start_background()
            try:
                with ServiceClient(address=server.address) as client:
                    client.factor(grid_A, job_id="wire-1", timeout=120)
                    client.factor(grid_A, job_id="wire-1", timeout=120)
                assert svc.metrics.deduped == 1
            finally:
                server.close()

    def test_health_verb_over_the_wire(self, grid_A):
        with FactorService(**SVC_KW) as svc:
            server = ServiceServer(svc, port=0).start_background()
            try:
                with ServiceClient(address=server.address) as client:
                    client.factor(grid_A, timeout=120)
                    h = client.health()
                    assert h["status"] == "ok"
                    assert h["pool"]["nprocs"] == 2
                    assert h["breaker"]["state"] == "closed"
            finally:
                server.close()


class TestGracefulDrain:
    def test_close_fails_stuck_handles_typed(self, grid_A):
        """Satellite: a handle the drain never reaches is failed with a
        typed ServiceClosed — a blocked ``result()`` caller always gets
        an answer."""
        svc = FactorService(**SVC_KW).start()
        svc.factor(grid_A)
        stuck = JobHandle(FactorJob(job_id="stuck", A=grid_A))
        svc._outstanding["stuck"] = stuck
        svc.close()
        assert stuck.done()
        with pytest.raises(ServiceClosed):
            stuck.result(0)
        assert svc.metrics.records[-1].job_id == "stuck"
        svc.close()  # idempotent

    def test_queued_jobs_fail_typed_on_close(self, grid_A):
        """Jobs still in the admission queue at close() resolve typed."""
        svc = FactorService(**SVC_KW)
        svc._started = True  # no dispatcher: the queue holds the job
        handle = svc.submit(grid_A)
        svc.close()
        with pytest.raises(ServiceClosed):
            handle.result(0)


class TestFaultPlanParsing:
    def test_named_scenario_with_params(self):
        plan = parse_fault_plan("crash-hard:rank=0,after_tasks=2", seed=9)
        assert plan.seed == 9
        assert plan.crash == (CrashSpec(0, 2, hard=True),)
        slow = parse_fault_plan("slow:rank=1,slow_s=0.05")
        assert slow.slow == {1: 0.05}

    def test_none_and_file_forms(self, tmp_path):
        assert parse_fault_plan(None) is None
        assert parse_fault_plan("none") is None
        path = tmp_path / "plan.json"
        path.write_text(HARD_KILL.to_json())
        assert parse_fault_plan(f"@{path}") == HARD_KILL

    def test_unknown_scenario_raises(self):
        with pytest.raises(KeyError):
            parse_fault_plan("meteor-strike")


class TestLoadgenResilience:
    def test_kill_worker_mid_run_all_jobs_land(self, grid_A):
        """Satellite: ``kill_worker_at`` SIGKILLs a pool rank mid-run;
        the report shows zero failures and tags the recovery path."""
        cfg = LoadgenConfig(
            jobs=6, patterns=1, repeat_ratio=1.0, mode="closed",
            concurrency=1, seed=5, n=10, timeout=120.0,
            kill_worker_at=3, kill_rank=1,
        )
        with FactorService(**SVC_KW) as svc:
            report = run_loadgen(
                lambda: ServiceClient(service=svc), cfg, service=svc
            )
        d = report.to_dict()
        assert d["jobs"]["ok"] == 6
        assert d["jobs"]["failed"] == 0
        assert (
            d["resilience"]["recovered"] + d["resilience"]["degraded"] >= 1
        )
        assert {"p50", "p95", "p99"} <= set(d["latency_s"])

    def test_deadline_budget_reported(self, grid_A):
        cfg = LoadgenConfig(
            jobs=3, patterns=1, mode="closed", concurrency=1, seed=1,
            n=10, timeout=120.0, deadline_s=1e-4,
        )
        with FactorService(**SVC_KW) as svc:
            report = run_loadgen(lambda: ServiceClient(service=svc), cfg)
        d = report.to_dict()
        assert d["jobs"]["expired"] == 3
        assert d["jobs"]["failed"] == 0


class TestChaosServiceCLI:
    def test_matrix_subset_passes(self, capsys):
        from repro.cli import main

        rc = main([
            "chaos-service", "--jobs", "4", "--n", "8",
            "--scenarios", "none,deadline", "--stall-timeout", "10",
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "[ok] scenario=none" in out
        assert "[ok] scenario=deadline" in out
