import numpy as np

from repro.graph import AdjacencyGraph
from repro.matrices import bcsstk_like_matrix, grid2d_matrix
from repro.matrices.spd import random_spd_sparse
from repro.ordering import minimum_degree
from repro.symbolic import symbolic_factor
from repro.util.arrays import is_permutation


class TestMinimumDegree:
    def test_permutation(self):
        A = random_spd_sparse(100, density=0.05, seed=1)
        g = AdjacencyGraph.from_sparse(A)
        assert is_permutation(minimum_degree(g))

    def test_single_elimination_variant(self):
        A = random_spd_sparse(60, density=0.08, seed=2)
        g = AdjacencyGraph.from_sparse(A)
        assert is_permutation(minimum_degree(g, multiple=False))

    def test_reduces_fill_vs_natural(self):
        p = bcsstk_like_matrix(240, seed=4)
        g = AdjacencyGraph.from_sparse(p.A)
        perm = minimum_degree(g)
        md = symbolic_factor(p.A, perm)
        nat = symbolic_factor(p.A, None)
        assert md.factor_ops < nat.factor_ops

    def test_tree_graph_no_fill(self):
        """MD on a tree must produce a perfect (no-fill) ordering."""
        from scipy import sparse

        n = 40
        rng = np.random.default_rng(5)
        parents = [rng.integers(0, i) for i in range(1, n)]
        rows = np.arange(1, n)
        cols = np.array(parents)
        A = sparse.coo_matrix((np.ones(n - 1), (rows, cols)), shape=(n, n))
        A = (A + A.T + sparse.eye(n) * 10).tocsc()
        g = AdjacencyGraph.from_sparse(A)
        perm = minimum_degree(g)
        sf = symbolic_factor(A, perm, amalgamate=False)
        assert sf.factor_nnz == 2 * n - 1  # diagonal + one entry per edge

    def test_deterministic(self):
        A = random_spd_sparse(70, density=0.06, seed=6)
        g = AdjacencyGraph.from_sparse(A)
        assert np.array_equal(minimum_degree(g), minimum_degree(g))

    def test_empty_graph(self):
        from scipy import sparse

        g = AdjacencyGraph.from_sparse(sparse.eye(0).tocsr())
        assert minimum_degree(g).size == 0

    def test_dense_clique(self):
        """On a clique any order is optimal; just require validity."""
        from scipy import sparse

        n = 12
        A = sparse.csr_matrix(np.ones((n, n)))
        g = AdjacencyGraph.from_sparse(A)
        assert is_permutation(minimum_degree(g))

    def test_approximate_mode_valid(self):
        A = random_spd_sparse(90, density=0.06, seed=12)
        g = AdjacencyGraph.from_sparse(A)
        assert is_permutation(minimum_degree(g, approximate=True))

    def test_approximate_fill_close_to_exact(self):
        """The ADD degree bound costs a little fill, not a blowup."""
        p = bcsstk_like_matrix(300, seed=13)
        g = AdjacencyGraph.from_sparse(p.A)
        exact = symbolic_factor(p.A, minimum_degree(g)).factor_nnz
        approx = symbolic_factor(
            p.A, minimum_degree(g, approximate=True)
        ).factor_nnz
        assert approx <= 1.5 * exact

    def test_approximate_deterministic(self):
        A = random_spd_sparse(60, density=0.08, seed=14)
        g = AdjacencyGraph.from_sparse(A)
        assert np.array_equal(
            minimum_degree(g, approximate=True),
            minimum_degree(g, approximate=True),
        )
