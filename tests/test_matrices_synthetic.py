import numpy as np

from repro.matrices import (
    bcsstk_like_matrix,
    copter_like_matrix,
    fleet_like_matrix,
)
from repro.matrices.spd import is_symmetric_pattern


class TestBcsstkLike:
    def test_size(self):
        p = bcsstk_like_matrix(300)
        assert p.n == 300

    def test_symmetric_spd_shift(self):
        p = bcsstk_like_matrix(200, seed=5)
        assert is_symmetric_pattern(p.A, tol=1e-12)
        # diagonal dominance by construction
        A = p.A.tocsr()
        diag = A.diagonal()
        rowsum = np.asarray(np.abs(A).sum(axis=1)).ravel()
        off = rowsum - np.abs(diag)
        assert (diag >= off).all()

    def test_deterministic(self):
        a = bcsstk_like_matrix(150, seed=9).A
        b = bcsstk_like_matrix(150, seed=9).A
        assert (a != b).nnz == 0

    def test_dof_block_coupling(self):
        """Equations of one mesh node couple densely (dof x dof blocks)."""
        p = bcsstk_like_matrix(90, dof=3, seed=1)
        A = p.A.tocsr()
        for node in range(5):
            block = A[3 * node : 3 * node + 3, 3 * node : 3 * node + 3].toarray()
            assert (block != 0).all()

    def test_coords_present(self):
        p = bcsstk_like_matrix(120, seed=2)
        assert p.coords.shape == (120, 3)


class TestCopterLike:
    def test_blade_aspect(self):
        p = copter_like_matrix(300, seed=3)
        spans = p.coords.max(axis=0) - p.coords.min(axis=0)
        assert spans[0] > 2 * spans[1] > 0  # elongated along the span
        assert spans[1] > spans[2] > 0  # flattened cross-section

    def test_symmetric(self):
        assert is_symmetric_pattern(copter_like_matrix(200, seed=4).A, tol=1e-12)


class TestFleetLike:
    def test_size_and_symmetry(self):
        p = fleet_like_matrix(250, seed=6)
        assert p.n == 250
        assert is_symmetric_pattern(p.A, tol=1e-12)

    def test_hub_rows_denser(self):
        """Hub constraints accumulate many more couplings than typical rows."""
        p = fleet_like_matrix(2000, seed=8)
        A = p.A.tocsr()
        row_nnz = np.diff(A.indptr)
        nhubs = max(1, int(0.004 * 2000))
        assert row_nnz[:nhubs].mean() > 1.5 * np.median(row_nnz)

    def test_deterministic(self):
        a = fleet_like_matrix(150, seed=11).A
        b = fleet_like_matrix(150, seed=11).A
        assert (a != b).nnz == 0
