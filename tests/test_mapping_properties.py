"""Property-based tests for the §4 remapping heuristics.

Hypothesis generates random work vectors / block-work matrices and checks
the guarantees the greedy heuristics actually provide:

* totality — every panel lands on exactly one bin in ``[0, nbins)``;
* determinism — the same inputs always produce the same map (stable
  sorts, lowest-index tie-breaking);
* the greedy bound — any greedy order achieves
  ``max load <= sum/nbins + max item``;
* the LPT guarantee — DW (decreasing work, classic LPT) achieves
  ``max load <= (4/3 - 1/(3m)) * OPT``, hence is never worse than
  ``(4/3 - 1/(3m)) *`` the cyclic max (cyclic can't beat the optimum);
* in 2-D, the DW row map's §3.2 row balance is therefore at least
  ``3/4`` of cyclic's on any block-work matrix.

Note the heuristics are *not* universally at-least-as-good as cyclic on
adversarial inputs (e.g. work ``[2, 3, 2, 3, 2]`` on 2 bins: cyclic max 6,
LPT max 7) — the paper's claim is empirical, about sparse-factor work
profiles. The properties below are the provable ones.
"""

from __future__ import annotations

from types import SimpleNamespace

import numpy as np
import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings  # noqa: E402
from hypothesis import strategies as st  # noqa: E402

from repro.mapping.balance import balance_metrics  # noqa: E402
from repro.mapping.base import CartesianMap  # noqa: E402
from repro.mapping.grid import ProcessorGrid  # noqa: E402
from repro.mapping.heuristics import (  # noqa: E402
    HEURISTICS,
    greedy_partition,
    heuristic_vector,
    partition_lower_bound,
)

#: Random non-negative integer work vectors (integers keep load sums exact).
work_vectors = st.lists(
    st.integers(min_value=0, max_value=10_000), min_size=1, max_size=60
).map(lambda xs: np.asarray(xs, dtype=np.float64))

nbins_strategy = st.integers(min_value=1, max_value=12)

GREEDY_HEURISTICS = tuple(h for h in HEURISTICS if h != "CY")


def _depth_for(n: int) -> np.ndarray:
    # A plausible elimination-tree depth profile for the ID heuristic:
    # later panels (closer to the root) are shallower.
    return np.arange(n)[::-1].copy()


def _max_load(work: np.ndarray, assignment: np.ndarray, nbins: int) -> float:
    return float(
        np.bincount(assignment, weights=work, minlength=nbins).max()
    )


@pytest.mark.parametrize("heuristic", HEURISTICS)
@given(work=work_vectors, nbins=nbins_strategy)
@settings(max_examples=60, deadline=None)
def test_total_onto_bins(heuristic, work, nbins):
    """Every panel is assigned exactly one bin in [0, nbins)."""
    v = heuristic_vector(heuristic, work, nbins, depth=_depth_for(len(work)))
    assert v.shape == work.shape
    assert np.issubdtype(v.dtype, np.integer)
    assert v.min() >= 0
    assert v.max() < nbins


@pytest.mark.parametrize("heuristic", HEURISTICS)
@given(work=work_vectors, nbins=nbins_strategy)
@settings(max_examples=40, deadline=None)
def test_deterministic(heuristic, work, nbins):
    """The same inputs always produce the identical map (stable sorts,
    lowest-bin tie-breaking) — a mapping must be reproducible across
    processes for the runtime's ownership to agree."""
    depth = _depth_for(len(work))
    a = heuristic_vector(heuristic, work, nbins, depth=depth)
    b = heuristic_vector(heuristic, work.copy(), nbins, depth=depth.copy())
    assert np.array_equal(a, b)


@pytest.mark.parametrize("heuristic", GREEDY_HEURISTICS)
@given(work=work_vectors, nbins=nbins_strategy)
@settings(max_examples=60, deadline=None)
def test_greedy_bound(heuristic, work, nbins):
    """Greedy in *any* consideration order: when a bin receives its last
    item it was the least loaded, so max load <= mean + max item."""
    v = heuristic_vector(heuristic, work, nbins, depth=_depth_for(len(work)))
    achieved = _max_load(work, v, nbins)
    bound = work.sum() / nbins + (work.max() if work.size else 0.0)
    assert achieved <= bound + 1e-9


@given(work=work_vectors, nbins=nbins_strategy)
@settings(max_examples=60, deadline=None)
def test_dw_is_lpt_within_four_thirds_of_cyclic(work, nbins):
    """DW is LPT, so max load <= (4/3 - 1/(3m)) * OPT; cyclic cannot beat
    OPT, hence DW is within the same factor of cyclic's max load. (Plain
    'DW >= cyclic balance' is false in general — see the module docstring.)
    """
    dw = heuristic_vector("DW", work, nbins)
    cy = heuristic_vector("CY", work, nbins)
    dw_max = _max_load(work, dw, nbins)
    cy_max = _max_load(work, cy, nbins)
    factor = 4.0 / 3.0 - 1.0 / (3.0 * nbins)
    assert dw_max <= factor * cy_max + 1e-9
    # ... and never below the information-theoretic lower bound.
    assert dw_max + 1e-9 >= partition_lower_bound(work, nbins)


@given(work=work_vectors, nbins=nbins_strategy)
@settings(max_examples=40, deadline=None)
def test_greedy_partition_respects_order(work, nbins):
    """greedy_partition consumes items in the given order and assigns the
    least-loaded bin at each step (replayed independently here)."""
    order = np.argsort(-work, kind="stable")
    got = greedy_partition(work, order, nbins)
    loads = np.zeros(nbins)
    for item in order:
        expect = int(np.argmin(loads))
        assert got[item] == expect
        loads[expect] += work[item]


# ----------------------------------------------------------------------
# 2-D: the §3.2 row balance of a DW row map on random block-work matrices.
# ----------------------------------------------------------------------

block_work = st.integers(min_value=2, max_value=14).flatmap(
    lambda n: st.lists(
        st.lists(st.integers(min_value=0, max_value=1000),
                 min_size=n, max_size=n),
        min_size=n, max_size=n,
    ).map(lambda rows: np.tril(np.asarray(rows, dtype=np.float64)))
)


def _fake_workmodel(W: np.ndarray) -> SimpleNamespace:
    """A WorkModel stand-in from a dense lower-triangular block-work
    matrix: one 'block' per (I, J) with work W[I, J]."""
    I, J = np.nonzero(np.tril(np.ones_like(W)))
    return SimpleNamespace(
        dest_I=I,
        dest_J=J,
        work=W[I, J],
        workI=W.sum(axis=1),
        workJ=W.sum(axis=0),
        total_work=float(W.sum()),
    )


@given(W=block_work, Pr=st.integers(1, 4), Pc=st.integers(1, 4))
@settings(max_examples=40, deadline=None)
def test_dw_row_balance_within_lpt_factor_of_cyclic(W, Pr, Pc):
    """On any block-work matrix, the DW/CY map's row balance is at least
    (1 / (4/3 - 1/(3 Pr))) >= 3/4 of the cyclic map's — the 2-D face of
    the LPT guarantee, stated on the paper's own balance statistic."""
    wm = _fake_workmodel(W)
    grid = ProcessorGrid(Pr, Pc)
    n = W.shape[0]
    depth = _depth_for(n)
    cy = CartesianMap(
        grid,
        heuristic_vector("CY", wm.workI, Pr, depth),
        heuristic_vector("CY", wm.workJ, Pc, depth),
        label="CY/CY",
    )
    dw = CartesianMap(
        grid,
        heuristic_vector("DW", wm.workI, Pr, depth),
        heuristic_vector("CY", wm.workJ, Pc, depth),
        label="DW/CY",
    )
    bal_cy = balance_metrics(wm, cy)
    bal_dw = balance_metrics(wm, dw)
    factor = 4.0 / 3.0 - 1.0 / (3.0 * Pr)
    assert bal_dw.row + 1e-9 >= bal_cy.row / factor
    # Balance statistics are efficiencies: all in (0, 1], overall tightest.
    for rep in (bal_cy, bal_dw):
        assert 0.0 < rep.overall <= 1.0 + 1e-12
        assert rep.overall <= rep.row + 1e-12
        assert rep.overall <= rep.column + 1e-12
