import numpy as np
import pytest
from scipy import sparse

from repro.matrices.spd import is_symmetric_pattern, make_spd, random_spd_sparse


class TestIsSymmetricPattern:
    def test_symmetric(self):
        A = sparse.csr_matrix(np.array([[2.0, 1.0], [1.0, 3.0]]))
        assert is_symmetric_pattern(A)

    def test_asymmetric(self):
        A = sparse.csr_matrix(np.array([[2.0, 1.0], [0.0, 3.0]]))
        assert not is_symmetric_pattern(A)

    def test_tolerance(self):
        A = sparse.csr_matrix(np.array([[2.0, 1.0], [1.0 + 1e-12, 3.0]]))
        assert is_symmetric_pattern(A, tol=1e-10)


class TestMakeSpd:
    def test_diagonally_dominant(self):
        rng = np.random.default_rng(0)
        M = sparse.random(30, 30, density=0.2, random_state=0)
        A = make_spd(M, shift=0.5)
        d = A.diagonal()
        off = np.asarray(np.abs(A).sum(axis=1)).ravel() - np.abs(d)
        assert (d > off).all()

    def test_positive_definite(self):
        M = sparse.random(25, 25, density=0.3, random_state=1)
        A = make_spd(M)
        vals = np.linalg.eigvalsh(A.toarray())
        assert vals.min() > 0

    def test_preserves_offdiag_pattern(self):
        M = sparse.random(20, 20, density=0.2, random_state=2)
        A = make_spd(M)
        S = ((M + M.T) * 0.5).tolil()
        S.setdiag(0)
        expected = (S.tocsr() != 0).astype(int)
        got = A.tolil()
        got.setdiag(0)
        got = (got.tocsr() != 0).astype(int)
        assert (expected != got).nnz == 0


class TestRandomSpdSparse:
    def test_spd(self):
        A = random_spd_sparse(40, density=0.1, seed=3)
        assert np.linalg.eigvalsh(A.toarray()).min() > 0

    def test_symmetric(self):
        A = random_spd_sparse(40, density=0.1, seed=4)
        assert is_symmetric_pattern(A, tol=1e-12)

    def test_density_scales(self):
        lo = random_spd_sparse(60, density=0.01, seed=5).nnz
        hi = random_spd_sparse(60, density=0.2, seed=5).nnz
        assert hi > lo
