import numpy as np
import pytest

from repro.analysis import critical_path
from repro.fanout import block_owners, simulate_fanout
from repro.fanout.priorities import (
    POLICIES,
    bottom_level_priorities,
    column_priorities,
    depth_priorities,
    task_priorities,
)
from repro.fanout.tasks import BDIV, BFAC, BMOD
from repro.mapping import cyclic_map, square_grid


class TestPolicies:
    def test_column_shape(self, grid12_pipeline):
        tg = grid12_pipeline[5]
        p = column_priorities(tg)
        assert p.shape == (tg.ntasks,)

    def test_depth_requires_depths(self, grid12_pipeline):
        tg = grid12_pipeline[5]
        with pytest.raises(ValueError):
            task_priorities(tg, "depth")

    def test_fifo_is_none(self, grid12_pipeline):
        assert task_priorities(grid12_pipeline[5], "fifo") is None

    def test_unknown_policy(self, grid12_pipeline):
        with pytest.raises(KeyError):
            task_priorities(grid12_pipeline[5], "random")


class TestBottomLevel:
    def test_root_bfac_minimal_level(self, grid12_pipeline):
        """The last panel's BFAC has no successors: its level is its own
        duration — the smallest bottom level of any BFAC."""
        tg = grid12_pipeline[5]
        level = -bottom_level_priorities(tg)
        fac = np.flatnonzero(tg.task_kind == BFAC)
        root_fac = fac[np.argmax(tg.block_J[tg.task_block[fac]])]
        assert level[root_fac] == pytest.approx(level[fac].min())

    def test_levels_decrease_along_chains(self, grid12_pipeline):
        """A BMOD's level exceeds its destination's factor-task level."""
        tg = grid12_pipeline[5]
        level = -bottom_level_priorities(tg)
        factor_task = np.where(tg.bfac_task >= 0, tg.bfac_task, tg.bdiv_task)
        mods = np.flatnonzero(tg.task_kind == BMOD)
        succ = factor_task[tg.task_block[mods]]
        assert (level[mods] > level[succ] - 1e-15).all()

    def test_max_level_is_critical_path(self, grid12_pipeline):
        """The largest bottom level equals the DAG critical path computed
        independently by the analysis module... up to the BDIV/diag
        dependency, which the analysis includes and levels include too."""
        tg = grid12_pipeline[5]
        level = -bottom_level_priorities(tg)
        cp = critical_path(tg)
        # bottom levels ignore the BFAC->BDIV *arrival* coupling handled
        # through max(), so they can only underestimate the true path
        assert level.max() <= cp.length_seconds + 1e-12
        assert level.max() > 0.3 * cp.length_seconds


class TestSimulationWithPolicies:
    @pytest.mark.parametrize("policy", POLICIES)
    def test_all_policies_complete(self, grid12_pipeline, policy):
        part, wm, tg = grid12_pipeline[2], grid12_pipeline[4], grid12_pipeline[5]
        owners = block_owners(tg, cyclic_map(tg.npanels, square_grid(9)))
        prio = task_priorities(tg, policy, depth=part.panel_depths())
        r = simulate_fanout(
            tg, owners, 9, priorities=prio, record_schedule=True
        )
        assert len(r.schedule) == tg.ntasks

    def test_priorities_change_schedule(self, grid12_pipeline):
        tg = grid12_pipeline[5]
        owners = block_owners(tg, cyclic_map(tg.npanels, square_grid(9)))
        a = simulate_fanout(
            tg, owners, 9,
            priorities=task_priorities(tg, "column"),
            record_schedule=True,
        )
        b = simulate_fanout(
            tg, owners, 9,
            priorities=task_priorities(tg, "bottom_level"),
            record_schedule=True,
        )
        assert a.schedule != b.schedule or a.t_parallel != b.t_parallel

    def test_rejects_wrong_length(self, grid12_pipeline):
        tg = grid12_pipeline[5]
        owners = block_owners(tg, cyclic_map(tg.npanels, square_grid(4)))
        with pytest.raises(ValueError):
            simulate_fanout(tg, owners, 4, priorities=np.zeros(3))
