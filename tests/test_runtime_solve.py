"""Conformance suite for the distributed triangular solve.

The distributed forward/backward substitution
(:mod:`repro.runtime.worker`'s solve phase) must be *bitwise* identical
to the sequential block substitution in :mod:`repro.numeric.solve` for
every cell of the conformance matrix — transports (inline, shm),
schedules (static, dynamic), P in {1, 2, 4}, and 1/4/16 right-hand
sides — including a problem with a non-power-of-two panel count. On shm
the factor never leaves its arena slots: every factor frame on the wire
is exactly a 64-byte descriptor, and only RHS fragments carry payload.
"""

import numpy as np
import pytest

from repro.analysis.comm_volume import solve_communication_volume
from repro.numeric import BlockCholesky
from repro.numeric.solve import block_solve_permuted, solve_with_factor
from repro.runtime import mp_block_cholesky, plan_owners, shm_available
from repro.runtime.engine import run_mp_fanout
from repro.runtime.wire import HEADER_BYTES

P_SWEEP = (1, 2, 4)
NRHS_SWEEP = (1, 4, 16)


def _rhs(n: int, nrhs: int) -> np.ndarray:
    rng = np.random.default_rng(1234 + nrhs)
    return rng.standard_normal((n, nrhs))


@pytest.fixture(scope="module")
def grid_ref(grid12_pipeline):
    """Sequential factor + permuted-system solve references (grid12)."""
    _, sf, _, bs, wm, tg = grid12_pipeline
    chol = BlockCholesky(bs, sf.A).factor()
    refs = {
        nrhs: block_solve_permuted(chol, _rhs(sf.A.shape[0], nrhs))
        for nrhs in NRHS_SWEEP
    }
    return {"sf": sf, "bs": bs, "wm": wm, "tg": tg, "refs": refs}


def _run(ref, nrhs, nprocs, transport, schedule):
    sf, bs, tg = ref["sf"], ref["bs"], ref["tg"]
    return mp_block_cholesky(
        bs, sf.A, tg, nprocs=nprocs, mapping="DW/CY",
        transport=transport, schedule=schedule,
        rhs=_rhs(sf.A.shape[0], nrhs),
    )


class TestBitwiseMatrix:
    """Every (transport, schedule, P, nrhs) cell pins bitwise."""

    @pytest.mark.parametrize("transport", ["inline", "shm"])
    @pytest.mark.parametrize("schedule", ["static", "dynamic"])
    @pytest.mark.parametrize("nprocs", P_SWEEP)
    @pytest.mark.parametrize("nrhs", NRHS_SWEEP)
    def test_cell(self, grid_ref, transport, schedule, nprocs, nrhs):
        if transport == "shm" and not shm_available():
            pytest.skip("no POSIX shared memory on this platform")
        res = _run(grid_ref, nrhs, nprocs, transport, schedule)
        assert res.solution is not None
        assert res.solution.shape == (grid_ref["sf"].A.shape[0], nrhs)
        assert np.array_equal(res.solution, grid_ref["refs"][nrhs])


class TestNonPowerOfTwoPanels:
    """RAND150 (mmd, B=6, 25 panels) pins bitwise too — uneven panel
    counts exercise the cyclic wrap of the owner map in both sweeps."""

    @pytest.mark.parametrize("schedule", ["static", "dynamic"])
    def test_bitwise(self, random_spd_pipeline, schedule):
        _, sf, _, bs, wm, tg = random_spd_pipeline
        npanels = tg.npanels
        assert npanels & (npanels - 1) != 0  # genuinely non-power-of-two
        b = _rhs(sf.A.shape[0], 4)
        ref = block_solve_permuted(BlockCholesky(bs, sf.A).factor(), b)
        res = mp_block_cholesky(
            bs, sf.A, tg, nprocs=2, mapping="DW/CY",
            schedule=schedule, rhs=b,
        )
        assert np.array_equal(res.solution, ref)


class TestSolveWire:
    def test_shm_ships_no_factor_payload(self, grid_ref):
        """On shm, factor frames are pure 64-byte descriptors; all
        payload bytes on the wire belong to the solve plane."""
        if not shm_available():
            pytest.skip("no POSIX shared memory on this platform")
        res = _run(grid_ref, 4, 2, "shm", "static")
        for w in res.metrics.workers:
            assert w.wire_bytes_sent == HEADER_BYTES * w.messages_sent
            assert w.wire_bytes_received == (
                HEADER_BYTES * w.messages_received
            )
        assert res.metrics.solve_bytes_total > 0

    @pytest.mark.parametrize("nprocs", P_SWEEP)
    @pytest.mark.parametrize("nrhs", [1, 4])
    def test_ledger_matches_predictor(self, grid_ref, nprocs, nrhs):
        """Measured solve messages/bytes equal the solve comm-volume
        predictor exactly, sent and received, on fault-free runs."""
        res = _run(grid_ref, nrhs, nprocs, "inline", "static")
        owners, _ = plan_owners(
            grid_ref["wm"], grid_ref["tg"], nprocs, "DW/CY", False
        )
        pred = solve_communication_volume(
            grid_ref["tg"], owners, nrhs=nrhs
        )
        met = res.metrics
        sent = sum(w.solve_messages_sent for w in met.workers)
        recv = sum(w.solve_messages_received for w in met.workers)
        assert sent == recv == pred.messages
        bsent = sum(w.solve_bytes_sent for w in met.workers)
        brecv = sum(w.solve_bytes_received for w in met.workers)
        assert bsent == brecv == pred.bytes

    def test_single_rank_is_silent(self, grid_ref):
        """P=1 solves entirely locally: zero solve wire traffic."""
        res = _run(grid_ref, 4, 1, "inline", "static")
        assert res.metrics.solve_messages_total == 0
        assert res.metrics.solve_bytes_total == 0
        assert np.array_equal(res.solution, grid_ref["refs"][4])


class TestSolveTasks:
    def test_task_counts_cover_the_plan(self, grid_ref):
        """Across ranks: one FSOLVE+BSOLVE per panel, one FUPD+BUPD per
        subdiagonal block — the whole SolvePlan, nothing twice."""
        res = _run(grid_ref, 1, 2, "inline", "static")
        tg = grid_ref["tg"]
        counts = {"FSOLVE": 0, "FUPD": 0, "BSOLVE": 0, "BUPD": 0}
        for w in res.metrics.workers:
            for k, v in w.solve_task_counts.items():
                counts[k] += v
        nsub = tg.nblocks - tg.npanels
        assert counts == {
            "FSOLVE": tg.npanels, "BSOLVE": tg.npanels,
            "FUPD": nsub, "BUPD": nsub,
        }

    def test_solve_work_is_partitioned(self, grid_ref):
        """Total solve work is independent of P (no task runs twice)."""
        works = set()
        for nprocs in (1, 2, 4):
            res = _run(grid_ref, 4, nprocs, "inline", "static")
            works.add(res.metrics.solve_work_total)
        assert len(works) == 1


class TestEngineSurface:
    def test_vector_rhs_roundtrip(self, grid12_pipeline):
        """1-D rhs in, (n, 1) solution out of the engine; the facade
        squeezes it back — exercised via run_mp_fanout directly."""
        _, sf, _, bs, wm, tg = grid12_pipeline
        owners, name = plan_owners(wm, tg, 2, "DW/CY", False)
        b = _rhs(sf.A.shape[0], 1)[:, 0]
        res = run_mp_fanout(
            bs, sf.A, tg, owners, 2, mapping=name, rhs=b
        )
        ref = block_solve_permuted(BlockCholesky(bs, sf.A).factor(), b)
        assert res.solution.shape == (sf.A.shape[0], 1)
        assert np.array_equal(res.solution, ref)
        assert res.metrics.to_dict()["solve"]["tasks"] > 0

    def test_bad_rhs_shape_is_typed(self, grid12_pipeline):
        _, sf, _, bs, wm, tg = grid12_pipeline
        owners, name = plan_owners(wm, tg, 2, "DW/CY", False)
        with pytest.raises(ValueError, match="rhs"):
            run_mp_fanout(
                bs, sf.A, tg, owners, 2, mapping=name,
                rhs=np.ones(sf.A.shape[0] + 1),
            )

    def test_no_rhs_means_no_solution(self, grid12_pipeline):
        _, sf, _, bs, wm, tg = grid12_pipeline
        res = mp_block_cholesky(bs, sf.A, tg, nprocs=2, mapping="DW/CY")
        assert res.solution is None
        assert res.metrics.solve_tasks_total == 0


class TestFacade:
    def test_combined_mp_solve_matches_sequential(self, grid12_pipeline):
        """SparseCholesky.solve() on an unfactored mp instance runs one
        combined distributed factor+solve, bitwise equal to the
        sequential facade."""
        from repro.solver import SparseCholesky

        problem, _, _, _, _, _ = grid12_pipeline
        b = _rhs(problem.A.shape[0], 3)
        seq = SparseCholesky(problem.A, ordering="nd", block_size=8)
        x_ref = seq.factor().solve(b)
        par = SparseCholesky(
            problem.A, ordering="nd", block_size=8,
            backend="mp", nprocs=2,
        )
        x = par.solve(b)
        assert np.array_equal(x, x_ref)
        assert par.runtime_metrics.solve_tasks_total > 0
        assert par.solve_residual < 1e-10

    def test_refinement_reports_residuals(self, grid12_pipeline):
        from repro.solver import SparseCholesky

        problem, _, _, _, _, _ = grid12_pipeline
        b = _rhs(problem.A.shape[0], 1)[:, 0]
        chol = SparseCholesky(problem.A, ordering="nd", block_size=8)
        x = chol.factor().solve(b, refine=1)
        assert len(chol.solve_residuals) == 2
        assert chol.solve_residual == chol.solve_residuals[-1]
        assert chol.solve_residual <= chol.solve_residuals[0] * 10
        assert np.max(np.abs(problem.A @ x - b)) < 1e-10
        with pytest.raises(ValueError):
            chol.solve(b, refine=-1)

    def test_solve_with_factor_reference_path(self, grid12_pipeline):
        """The sequential reference itself: block path == sparse-L path
        to solver tolerance, and the block path is what the facade
        prefers after factor()."""
        problem, sf, _, bs, _, _ = grid12_pipeline
        chol = BlockCholesky(bs, sf.A).factor()
        b = _rhs(problem.A.shape[0], 2)
        xb = solve_with_factor(chol, b, sf.ordering)
        xs = solve_with_factor(chol.to_csc(), b, sf.ordering)
        assert np.max(np.abs(problem.A @ xb - b)) < 1e-10
        assert np.max(np.abs(xb - xs)) < 1e-10
