"""Property-based tests (hypothesis) on the core invariants."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.blocks import BlockPartition, BlockStructure, WorkModel
from repro.fanout import TaskGraph, block_owners, run_fanout, simulate_fanout
from repro.machine.params import ZERO_COMM
from repro.mapping import ProcessorGrid, balance_metrics, cyclic_map, heuristic_map
from repro.mapping.balance import overall_balance_from_owners
from repro.mapping.heuristics import greedy_partition, heuristic_vector
from repro.matrices.spd import random_spd_sparse
from repro.numeric import BlockCholesky
from repro.symbolic import symbolic_factor
from repro.util.arrays import invert_permutation, union_sorted


# ---------------------------------------------------------------------------
# array utilities
# ---------------------------------------------------------------------------
@given(st.lists(st.integers(0, 1000), max_size=80),
       st.lists(st.integers(0, 1000), max_size=80))
def test_union_sorted_equals_set_union(xs, ys):
    a = np.unique(np.asarray(xs, dtype=np.int64))
    b = np.unique(np.asarray(ys, dtype=np.int64))
    out = union_sorted(a, b)
    assert set(out.tolist()) == set(xs) | set(ys)
    assert np.array_equal(out, np.sort(out))


@given(st.permutations(list(range(12))))
def test_invert_permutation_involution(perm):
    p = np.asarray(perm, dtype=np.int64)
    assert np.array_equal(invert_permutation(invert_permutation(p)), p)


# ---------------------------------------------------------------------------
# greedy number partitioning
# ---------------------------------------------------------------------------
@given(
    st.lists(st.floats(0.0, 1e6, allow_nan=False), min_size=1, max_size=60),
    st.integers(1, 8),
)
def test_greedy_partition_max_load_bound(work, nbins):
    """Greedy (any order): max load <= mean + max item — the classic bound."""
    w = np.asarray(work)
    assignment = greedy_partition(w, np.argsort(-w), nbins)
    loads = np.bincount(assignment, weights=w, minlength=nbins)
    assert loads.max() <= w.sum() / nbins + w.max() + 1e-6


@given(
    st.lists(st.floats(0.0, 1e6, allow_nan=False), min_size=1, max_size=40),
    st.integers(1, 6),
    st.sampled_from(["CY", "DW", "IN", "DN"]),
)
def test_heuristic_vector_total_work_conserved(work, nbins, heur):
    w = np.asarray(work)
    v = heuristic_vector(heur, w, nbins)
    loads = np.bincount(v, weights=w, minlength=nbins)
    assert np.isclose(loads.sum(), w.sum())
    assert v.shape == w.shape


# ---------------------------------------------------------------------------
# symbolic pipeline on random SPD matrices
# ---------------------------------------------------------------------------
@settings(deadline=None, max_examples=15)
@given(st.integers(5, 45), st.integers(0, 10_000))
def test_symbolic_counts_match_dense(n, seed):
    A = random_spd_sparse(n, density=min(1.0, 4.0 / n), seed=seed)
    sf = symbolic_factor(A, None)
    L = np.linalg.cholesky(sf.A.toarray())
    cc = (np.abs(L) > 1e-13).sum(axis=0)
    assert np.array_equal(cc, sf.cc)


@settings(deadline=None, max_examples=10)
@given(st.integers(8, 40), st.integers(0, 10_000), st.integers(1, 10))
def test_block_factor_reconstructs_random_spd(n, seed, B):
    A = random_spd_sparse(n, density=min(1.0, 5.0 / n), seed=seed)
    sf = symbolic_factor(A, None)
    bs = BlockStructure(BlockPartition(sf, B))
    L = BlockCholesky(bs, sf.A).factor().to_csc()
    assert abs(L @ L.T - sf.A).max() < 1e-8


# ---------------------------------------------------------------------------
# balance invariants
# ---------------------------------------------------------------------------
@settings(deadline=None, max_examples=10)
@given(st.integers(20, 60), st.integers(0, 1000), st.integers(2, 4))
def test_overall_balance_below_decomposed_balances(n, seed, pr):
    A = random_spd_sparse(n, density=0.15, seed=seed)
    sf = symbolic_factor(A, None)
    wm = WorkModel(BlockStructure(BlockPartition(sf, 4)))
    g = ProcessorGrid(pr, pr)
    bal = balance_metrics(wm, cyclic_map(wm.npanels, g))
    assert bal.overall <= bal.row + 1e-12
    assert bal.overall <= bal.column + 1e-12
    assert bal.overall <= bal.diagonal + 1e-12
    assert 0 < bal.overall <= 1


# ---------------------------------------------------------------------------
# simulator invariants
# ---------------------------------------------------------------------------
@settings(deadline=None, max_examples=8)
@given(st.integers(20, 50), st.integers(0, 1000), st.integers(1, 3),
       st.integers(1, 4))
def test_simulation_efficiency_bounded(n, seed, pr, pc):
    A = random_spd_sparse(n, density=0.12, seed=seed)
    sf = symbolic_factor(A, None)
    wm = WorkModel(BlockStructure(BlockPartition(sf, 4)))
    tg = TaskGraph(wm)
    tg.validate()
    g = ProcessorGrid(pr, pc)
    owners = block_owners(tg, cyclic_map(tg.npanels, g))
    r = simulate_fanout(tg, owners, g.P)
    bound = overall_balance_from_owners(wm, owners, g.P)
    assert r.efficiency <= bound + 1e-9
    assert r.t_parallel >= r.t_sequential / g.P - 1e-12


@settings(deadline=None, max_examples=6)
@given(st.integers(25, 50), st.integers(0, 500))
def test_simulated_schedule_is_numerically_valid(n, seed):
    """Any order the simulator produces must be a legal factorization order."""
    A = random_spd_sparse(n, density=0.12, seed=seed)
    sf = symbolic_factor(A, None)
    bs = BlockStructure(BlockPartition(sf, 5))
    wm = WorkModel(bs)
    tg = TaskGraph(wm)
    g = ProcessorGrid(2, 2)
    owners = block_owners(tg, cyclic_map(tg.npanels, g))
    r = simulate_fanout(tg, owners, 4, machine=ZERO_COMM, record_schedule=True)
    L = BlockCholesky(bs, sf.A).run_schedule(tg, r.schedule).to_csc()
    assert abs(L @ L.T - sf.A).max() < 1e-8
