"""Thread-pool backend coverage across benchmark problems: identical
factors for every thread count, and agreement with the sequential
``BlockCholesky`` (ISSUE satellite: ``nthreads in {1, 2, 4}`` on at least
two benchmark problems)."""

import numpy as np
import pytest

from repro.experiments.pipeline import prepare_problem
from repro.numeric import BlockCholesky
from repro.numeric.parallel import parallel_block_cholesky

#: Two benchmark problems of different character: a regular 2-D mesh and an
#: irregular structural matrix.
PROBLEMS = ("GRID150", "BCSSTK15")


@pytest.fixture(scope="module", params=PROBLEMS)
def prepared(request):
    return prepare_problem(request.param, "small", 16)


class TestThreadPoolAcrossProblems:
    @pytest.mark.parametrize("nthreads", [1, 2, 4])
    def test_reconstructs_benchmark_problem(self, prepared, nthreads):
        res = parallel_block_cholesky(
            prepared.structure, prepared.symbolic.A, prepared.taskgraph,
            nthreads=nthreads,
        )
        L = res.to_csc()
        assert abs(L @ L.T - prepared.symbolic.A).max() < 1e-8
        assert res.tasks_executed == prepared.taskgraph.ntasks
        assert res.nthreads == nthreads

    def test_factors_identical_across_thread_counts(self, prepared):
        factors = {
            n: parallel_block_cholesky(
                prepared.structure, prepared.symbolic.A, prepared.taskgraph,
                nthreads=n,
            ).to_csc()
            for n in (1, 2, 4)
        }
        # The task set is fixed; only the order of exact subtractions into a
        # block can vary, so results agree to rounding level.
        assert abs(factors[1] - factors[2]).max() < 1e-9
        assert abs(factors[1] - factors[4]).max() < 1e-9

    def test_agrees_with_sequential_block_cholesky(self, prepared):
        seq = BlockCholesky(
            prepared.structure, prepared.symbolic.A
        ).factor().to_csc()
        for n in (1, 2, 4):
            par = parallel_block_cholesky(
                prepared.structure, prepared.symbolic.A, prepared.taskgraph,
                nthreads=n,
            ).to_csc()
            assert abs(par - seq).max() < 1e-9

    def test_solve_through_threaded_factor(self, prepared):
        from repro.numeric import solve_with_factor

        L = parallel_block_cholesky(
            prepared.structure, prepared.symbolic.A, prepared.taskgraph,
            nthreads=4,
        ).to_csc()
        n = prepared.problem.n
        b = np.ones(n)
        x = solve_with_factor(L, b, prepared.symbolic.ordering)
        assert np.max(np.abs(prepared.problem.A @ x - b)) < 1e-8
