import numpy as np
import pytest

from repro.matrices import grid2d_matrix
from repro.matrices.spd import random_spd_sparse
from repro.solver import SparseCholesky


@pytest.fixture(scope="module")
def grid_solver():
    return SparseCholesky(grid2d_matrix(16).A).factor()


class TestSparseCholesky:
    def test_factor_solve(self, grid_solver):
        n = grid_solver.A.shape[0]
        rng = np.random.default_rng(0)
        b = rng.standard_normal(n)
        x = grid_solver.solve(b)
        assert np.max(np.abs(grid_solver.A @ x - b)) < 1e-8

    def test_L_before_factor_raises(self):
        s = SparseCholesky(grid2d_matrix(6).A)
        with pytest.raises(RuntimeError):
            _ = s.L

    def test_auto_ordering_mesh_picks_nd(self):
        s = SparseCholesky(grid2d_matrix(24).A, ordering="auto")
        nat = SparseCholesky(grid2d_matrix(24).A, ordering="natural")
        assert s.symbolic.factor_ops < nat.symbolic.factor_ops

    def test_auto_ordering_irregular_runs(self):
        A = random_spd_sparse(120, density=0.05, seed=3)
        s = SparseCholesky(A, ordering="auto").factor()
        assert abs(s.L @ s.L.T - s.symbolic.A).max() < 1e-9

    def test_explicit_permutation(self):
        A = grid2d_matrix(8).A
        perm = np.random.default_rng(1).permutation(A.shape[0])
        s = SparseCholesky(A, ordering=perm).factor()
        b = np.ones(A.shape[0])
        assert np.max(np.abs(A @ s.solve(b) - b)) < 1e-8

    def test_rejects_nonsquare(self):
        from scipy import sparse

        with pytest.raises(ValueError):
            SparseCholesky(sparse.random(4, 5, density=0.5).tocsc())

    def test_unknown_ordering(self):
        with pytest.raises(KeyError):
            SparseCholesky(grid2d_matrix(4).A, ordering="zorder")


class TestPlanning:
    def test_plan_fields(self, grid_solver):
        plan = grid_solver.plan_parallel(16)
        assert plan.P == 16
        assert plan.mflops > 0
        assert 0 < plan.efficiency <= plan.balance_bound + 1e-9
        assert plan.runtime_seconds > 0

    def test_plan_cyclic(self, grid_solver):
        plan = grid_solver.plan_parallel(16, mapping="cyclic")
        assert plan.mapping == "cyclic"

    def test_nonsquare_p_falls_back(self, grid_solver):
        plan = grid_solver.plan_parallel(15)
        assert plan.P == 15
        assert plan.meta["grid"] in ("3x5", "5x3")

    def test_compare_mappings(self, grid_solver):
        plans = grid_solver.compare_mappings(16)
        assert set(plans) == {"cyclic", "ID/CY", "DW/CY"}
        # heuristic should not lose badly to cyclic
        assert plans["ID/CY"].mflops > 0.8 * plans["cyclic"].mflops

    def test_plan_without_factor(self):
        """Planning is symbolic-only: no numeric factorization required."""
        s = SparseCholesky(grid2d_matrix(12).A)
        plan = s.plan_parallel(9)
        assert plan.mflops > 0

    def test_recommend_processors_meets_target(self, grid_solver):
        plan = grid_solver.recommend_processors(
            target_efficiency=0.5, candidates=(1, 4, 9, 16)
        )
        assert plan.efficiency >= 0.5 or plan.P == 1

    def test_recommend_prefers_larger_p(self, grid_solver):
        loose = grid_solver.recommend_processors(
            target_efficiency=0.05, candidates=(1, 4, 9, 16)
        )
        strict = grid_solver.recommend_processors(
            target_efficiency=0.99, candidates=(1, 4, 9, 16)
        )
        assert loose.P >= strict.P

    def test_recommend_rejects_bad_target(self, grid_solver):
        import pytest as _pytest

        with _pytest.raises(ValueError):
            grid_solver.recommend_processors(target_efficiency=0.0)
