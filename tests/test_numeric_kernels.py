import numpy as np
import pytest

from repro.numeric import bdiv_kernel, bfac_kernel, bmod_kernel


def spd(n, seed=0):
    rng = np.random.default_rng(seed)
    B = rng.standard_normal((n, n))
    return B @ B.T + n * np.eye(n)


class TestBfac:
    def test_matches_numpy(self):
        D = spd(8)
        L, flops = bfac_kernel(D)
        assert np.allclose(L, np.linalg.cholesky(D))
        assert flops > 0

    def test_rejects_indefinite(self):
        with pytest.raises(np.linalg.LinAlgError):
            bfac_kernel(-np.eye(3))


class TestBdiv:
    def test_triangular_solve(self):
        rng = np.random.default_rng(1)
        L = np.linalg.cholesky(spd(6, 1))
        B = rng.standard_normal((4, 6))
        B_orig = B.copy()  # bdiv consumes B (in-place solve)
        X, flops = bdiv_kernel(B, L)
        assert np.allclose(X @ L.T, B_orig)
        assert flops == 4 * 36

    def test_solves_in_place(self):
        rng = np.random.default_rng(4)
        L = np.linalg.cholesky(spd(5, 2))
        B = rng.standard_normal((3, 5))
        X, _ = bdiv_kernel(B, L)
        assert np.shares_memory(X, B)


class TestBmod:
    def test_outer_product(self):
        rng = np.random.default_rng(2)
        A = rng.standard_normal((3, 5))
        B = rng.standard_normal((2, 5))
        U, flops = bmod_kernel(A, B)
        assert np.allclose(U, A @ B.T)
        assert flops == 2 * 3 * 2 * 5

    def test_bmod_into_accumulates_in_place(self):
        from repro.numeric.dense_kernels import bmod_kernel_into

        rng = np.random.default_rng(5)
        A = rng.standard_normal((4, 6))
        B = rng.standard_normal((3, 6))
        dest = rng.standard_normal((4, 3))
        expect = dest - A @ B.T
        buf = dest  # fused dgemm writes straight into the destination
        flops = bmod_kernel_into(A, B, dest)
        assert np.allclose(dest, expect)
        assert dest is buf
        assert flops == 2 * 4 * 3 * 6


class TestComposition:
    def test_one_step_block_elimination(self):
        """BFAC+BDIV+BMOD on a 2x2 block matrix reproduce dense Cholesky."""
        n, w = 10, 4
        A = spd(n, 3)
        L_ref = np.linalg.cholesky(A)
        D = A[:w, :w].copy()
        B = A[w:, :w].copy()
        C = A[w:, w:].copy()
        Lkk, _ = bfac_kernel(D)
        Lik, _ = bdiv_kernel(B, Lkk)
        U, _ = bmod_kernel(Lik, Lik)
        L22 = np.linalg.cholesky(C - U)
        assert np.allclose(Lkk, L_ref[:w, :w])
        assert np.allclose(Lik, L_ref[w:, :w])
        assert np.allclose(L22, L_ref[w:, w:])
