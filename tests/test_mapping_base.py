import numpy as np
import pytest

from repro.mapping import CartesianMap, ProcessorGrid, cyclic_map


class TestCartesianMap:
    def test_owner_matches_owner_array(self):
        g = ProcessorGrid(3, 4)
        rng = np.random.default_rng(0)
        m = CartesianMap(g, rng.integers(0, 3, 20), rng.integers(0, 4, 20))
        I = rng.integers(0, 20, 50)
        J = rng.integers(0, 20, 50)
        arr = m.owner_array(I, J)
        for i, j, o in zip(I, J, arr):
            assert m.owner(int(i), int(j)) == o

    def test_rejects_out_of_range(self):
        g = ProcessorGrid(2, 2)
        with pytest.raises(ValueError):
            CartesianMap(g, np.array([0, 2]), np.array([0, 1]))

    def test_rejects_length_mismatch(self):
        g = ProcessorGrid(2, 2)
        with pytest.raises(ValueError):
            CartesianMap(g, np.array([0, 1]), np.array([0]))

    def test_sc_detection(self):
        g = ProcessorGrid(2, 2)
        idx = np.arange(6) % 2
        assert CartesianMap(g, idx, idx).is_symmetric_cartesian
        assert not CartesianMap(g, idx, (idx + 1) % 2).is_symmetric_cartesian
        gr = ProcessorGrid(2, 3)
        assert not CartesianMap(
            gr, np.arange(6) % 2, np.arange(6) % 3
        ).is_symmetric_cartesian

    def test_cp_communication_bound(self):
        """Blocks of row I and column I map into one processor row plus one
        processor column: at most Pr + Pc distinct processors (§2.4)."""
        g = ProcessorGrid(4, 4)
        rng = np.random.default_rng(1)
        N = 30
        m = CartesianMap(g, rng.integers(0, 4, N), rng.integers(0, 4, N))
        for I in range(0, N, 5):
            dests = set()
            for J in range(N):
                dests.add(m.owner(I, J))  # row I destinations
                dests.add(m.owner(J, I))  # column I destinations
            assert len(dests) <= g.Pr + g.Pc
