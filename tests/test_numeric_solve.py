import numpy as np

from repro.blocks import BlockPartition, BlockStructure
from repro.matrices import grid2d_matrix
from repro.numeric import BlockCholesky, solve_with_factor
from repro.ordering import order_problem
from repro.symbolic import symbolic_factor


class TestSolveWithFactor:
    def test_end_to_end_with_permutation(self, grid12_pipeline):
        problem, sf, _, bs, *_ = grid12_pipeline
        L = BlockCholesky(bs, sf.A).factor().to_csc()
        rng = np.random.default_rng(0)
        b = rng.standard_normal(problem.n)
        x = solve_with_factor(L, b, sf.ordering)
        assert np.max(np.abs(problem.A @ x - b)) < 1e-8

    def test_identity_ordering(self):
        p = grid2d_matrix(6)
        sf = symbolic_factor(p.A, None)
        bs = BlockStructure(BlockPartition(sf, 8))
        L = BlockCholesky(bs, sf.A).factor().to_csc()
        b = np.ones(p.n)
        x = solve_with_factor(L, b, sf.ordering)
        assert np.max(np.abs(p.A @ x - b)) < 1e-8

    def test_multiple_rhs(self, grid12_pipeline):
        problem, sf, _, bs, *_ = grid12_pipeline
        L = BlockCholesky(bs, sf.A).factor().to_csc()
        B = np.eye(problem.n)[:, :3]
        X = solve_with_factor(L, B, sf.ordering)
        assert np.max(np.abs(problem.A @ X - B)) < 1e-8

    def test_matches_numpy_solve(self, grid12_pipeline):
        problem, sf, _, bs, *_ = grid12_pipeline
        L = BlockCholesky(bs, sf.A).factor().to_csc()
        b = np.arange(problem.n, dtype=float)
        x = solve_with_factor(L, b, sf.ordering)
        x_ref = np.linalg.solve(problem.A.toarray(), b)
        assert np.allclose(x, x_ref, atol=1e-7)
