import numpy as np

from repro.matrices import grid2d_matrix
from repro.matrices.spd import random_spd_sparse
from repro.ordering import order_problem
from repro.symbolic import symbolic_factor
from repro.symbolic.amalgamation import AmalgamationParams


class TestAmalgamation:
    def test_reduces_supernode_count(self):
        p = grid2d_matrix(12)
        raw = symbolic_factor(p.A, order_problem(p, "nd"), amalgamate=False)
        amal = symbolic_factor(p.A, order_problem(p, "nd"), amalgamate=True)
        assert amal.nsupernodes <= raw.nsupernodes

    def test_structure_still_covers_factor(self):
        """Amalgamated structs must still contain every nonzero of L."""
        p = grid2d_matrix(8)
        sf = symbolic_factor(p.A, order_problem(p, "nd"), amalgamate=True)
        L = np.linalg.cholesky(sf.A.toarray())
        ptr = sf.snode_ptr
        for s in range(sf.nsupernodes):
            a, b = int(ptr[s]), int(ptr[s + 1])
            for j in range(a, b):
                below = np.flatnonzero(np.abs(L[:, j]) > 1e-13)
                below = below[below >= b]
                assert np.isin(below, sf.snode_rows[s]).all()

    def test_zero_fraction_only_merges_free(self):
        """With frac=0 and small_width=0, merges only happen when they add
        no explicit zeros, so supernodal nnz must not grow."""
        p = grid2d_matrix(10)
        params = AmalgamationParams(small_width=0, frac_small=0.0, frac=0.0)
        raw = symbolic_factor(p.A, order_problem(p, "nd"), amalgamate=False)
        tight = symbolic_factor(
            p.A, order_problem(p, "nd"), amalgamate=True, amalg_params=params
        )
        assert tight.supernodal_nnz == raw.supernodal_nnz

    def test_aggressive_merging_grows_storage_but_shrinks_count(self):
        A = random_spd_sparse(120, density=0.04, seed=7)
        raw = symbolic_factor(A, None, amalgamate=False)
        loose = symbolic_factor(
            A,
            None,
            amalgamate=True,
            amalg_params=AmalgamationParams(small_width=64, frac_small=0.9, frac=0.9),
        )
        assert loose.nsupernodes < raw.nsupernodes
        assert loose.supernodal_nnz >= raw.supernodal_nnz

    def test_column_coverage_preserved(self):
        A = random_spd_sparse(80, density=0.06, seed=8)
        sf = symbolic_factor(A, None, amalgamate=True)
        assert sf.snode_ptr[0] == 0
        assert sf.snode_ptr[-1] == 80
        assert (np.diff(sf.snode_ptr) > 0).all()
