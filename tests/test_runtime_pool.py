"""The persistent worker pool: multi-job batches on a resident crew,
values-only warm dispatch, bitwise re-factorization on both transports,
arena-reuse barriers, failure containment, and restart semantics."""

import numpy as np
import pytest
from scipy import sparse

from repro.numeric import BlockCholesky
from repro.ordering import permute_spd
from repro.runtime import (
    PatternContext,
    PoolJob,
    WorkerPool,
    plan_owners,
    shm_available,
)
from repro.runtime.arena import BlockArena
from repro.runtime.engine import _assemble


@pytest.fixture(scope="module")
def pool_problem(grid12_pipeline):
    """Owner plan + permuted matrices (two value sets, one pattern)."""
    _, sf, _, bs, wm, tg = grid12_pipeline
    owners, _ = plan_owners(wm, tg, 2, "DW/CY", False)
    A_perm = sf.A.tocsc()
    A2 = sf.A.copy().tocsc()
    A2.setdiag(A2.diagonal() + 1.5)
    return {
        "structure": bs,
        "tg": tg,
        "owners": owners,
        "A_perm": A_perm,
        "A2_perm": A2,
        "L1": BlockCholesky(bs, A_perm).factor().to_csc(),
        "L2": BlockCholesky(bs, A2).factor().to_csc(),
    }


def _context(p, pattern_id, arena_name=None):
    A = p["A_perm"]
    return PatternContext(
        pattern_id=pattern_id,
        structure=p["structure"],
        tg=p["tg"],
        owners=p["owners"],
        priorities=None,
        indptr=A.indptr,
        indices=A.indices,
        shape=tuple(A.shape),
        arena_name=arena_name,
    )


def _factor_of(p, outcome):
    assert outcome.ok, (outcome.error, outcome.aborted)
    empty = sparse.csc_matrix(p["A_perm"].shape)
    return _assemble(
        p["structure"], empty, p["tg"], outcome.results
    ).to_csc()


def _bitwise(L, ref):
    return (
        np.array_equal(L.indptr, ref.indptr)
        and np.array_equal(L.indices, ref.indices)
        and np.array_equal(L.data, ref.data)
    )


class TestInlinePool:
    def test_batch_with_warm_jobs_bitwise(self, pool_problem):
        """Same pattern, new values: every pooled job — cold and warm —
        must reproduce the sequential factor bitwise (inline)."""
        p = pool_problem
        with WorkerPool(nprocs=2) as pool:
            out = pool.run_batch([
                PoolJob(seq=0, pattern_id="g", values=p["A_perm"].data,
                        context=_context(p, "g")),
                PoolJob(seq=1, pattern_id="g", values=p["A2_perm"].data),
                PoolJob(seq=2, pattern_id="g", values=p["A_perm"].data),
            ], timeout_s=120)
            assert _bitwise(_factor_of(p, out[0]), p["L1"])
            assert _bitwise(_factor_of(p, out[1]), p["L2"])
            assert _bitwise(_factor_of(p, out[2]), p["L1"])

    def test_context_survives_batches(self, pool_problem):
        """A later batch needs no context re-ship for a seen pattern."""
        p = pool_problem
        with WorkerPool(nprocs=2) as pool:
            out = pool.run_batch([
                PoolJob(seq=0, pattern_id="g", values=p["A_perm"].data,
                        context=_context(p, "g")),
            ], timeout_s=120)
            assert out[0].ok
            assert "g" in pool.seen_patterns
            out = pool.run_batch([
                PoolJob(seq=1, pattern_id="g", values=p["A2_perm"].data),
            ], timeout_s=120)
            assert _bitwise(_factor_of(p, out[1]), p["L2"])

    def test_missing_context_is_typed_error(self, pool_problem):
        p = pool_problem
        with WorkerPool(nprocs=2) as pool:
            out = pool.run_batch([
                PoolJob(seq=0, pattern_id="nope", values=p["A_perm"].data),
            ], timeout_s=60)
            assert not out[0].ok
            assert "protocol breach" in out[0].error

    def test_per_job_metrics_isolated(self, pool_problem):
        """Each job's metrics cover only that job's traffic."""
        p = pool_problem
        with WorkerPool(nprocs=2) as pool:
            out = pool.run_batch([
                PoolJob(seq=0, pattern_id="g", values=p["A_perm"].data,
                        context=_context(p, "g")),
                PoolJob(seq=1, pattern_id="g", values=p["A_perm"].data),
            ], timeout_s=120)
        m0 = sum(r.metrics.messages_sent for r in out[0].results.values())
        m1 = sum(r.metrics.messages_sent for r in out[1].results.values())
        assert m0 == m1  # identical jobs, identical per-job counters
        for out_i in out.values():
            tasks = sum(
                r.metrics.tasks_executed for r in out_i.results.values()
            )
            assert tasks == p["tg"].ntasks


@pytest.mark.skipif(not shm_available(), reason="no POSIX shared memory")
class TestShmPool:
    def test_arena_reuse_barrier_bitwise(self, pool_problem):
        """Same-arena jobs serialize behind the DONE barrier and stay
        bitwise-correct; the arena survives the whole batch (shm)."""
        p = pool_problem
        arena = BlockArena.create(p["tg"])
        try:
            with WorkerPool(nprocs=2) as pool:
                out = pool.run_batch([
                    PoolJob(seq=0, pattern_id="g",
                            values=p["A_perm"].data,
                            context=_context(p, "g", arena.name),
                            announce=True),
                    PoolJob(seq=1, pattern_id="g",
                            values=p["A2_perm"].data,
                            wait_for=0, announce=True),
                    PoolJob(seq=2, pattern_id="g",
                            values=p["A_perm"].data, wait_for=1),
                ], timeout_s=120)
                assert _bitwise(_factor_of(p, out[0]), p["L1"])
                assert _bitwise(_factor_of(p, out[1]), p["L2"])
                assert _bitwise(_factor_of(p, out[2]), p["L1"])
        finally:
            arena.destroy()

    def test_shm_wire_bytes_stay_descriptor_sized(self, pool_problem):
        """Pool jobs on shm still ship 64-byte descriptors peer-to-peer
        (the gather alone travels inline)."""
        p = pool_problem
        arena = BlockArena.create(p["tg"])
        try:
            with WorkerPool(nprocs=2) as pool:
                out = pool.run_batch([
                    PoolJob(seq=0, pattern_id="g",
                            values=p["A_perm"].data,
                            context=_context(p, "g", arena.name)),
                ], timeout_s=120)
                assert out[0].ok
                w = out[0].results
                wire = sum(r.metrics.wire_bytes_sent for r in w.values())
                logical = sum(r.metrics.bytes_sent for r in w.values())
                assert 0 < wire < logical
        finally:
            arena.destroy()


class TestPoolLifecycle:
    def test_restart_clears_seen_patterns(self, pool_problem):
        p = pool_problem
        pool = WorkerPool(nprocs=2).start()
        try:
            pool.run_batch([
                PoolJob(seq=0, pattern_id="g", values=p["A_perm"].data,
                        context=_context(p, "g")),
            ], timeout_s=120)
            assert "g" in pool.seen_patterns
            gen = pool.generation
            pool.restart()
            assert pool.generation == gen + 1
            assert not pool.seen_patterns
            # context must be re-shipped after restart
            out = pool.run_batch([
                PoolJob(seq=1, pattern_id="g", values=p["A_perm"].data,
                        context=_context(p, "g")),
            ], timeout_s=120)
            assert _bitwise(_factor_of(p, out[1]), p["L1"])
        finally:
            pool.close()

    def test_close_is_idempotent(self):
        pool = WorkerPool(nprocs=2).start()
        pool.close()
        pool.close()
        assert not pool.running

    def test_evict_forces_reship(self, pool_problem):
        p = pool_problem
        with WorkerPool(nprocs=2) as pool:
            pool.run_batch([
                PoolJob(seq=0, pattern_id="g", values=p["A_perm"].data,
                        context=_context(p, "g")),
            ], timeout_s=120)
            pool.evict(["g"])
            assert "g" not in pool.seen_patterns
            out = pool.run_batch([
                PoolJob(seq=1, pattern_id="g", values=p["A2_perm"].data,
                        context=_context(p, "g")),
            ], timeout_s=120)
            assert _bitwise(_factor_of(p, out[1]), p["L2"])


class TestWarmEqualsCold:
    """The service acceptance bar: a warm re-factorization (cached
    pattern, new values) is bitwise identical to a cold factor() of the
    same values, on both transports."""

    @pytest.mark.parametrize("transport", ["inline", "shm"])
    def test_refactorization_bitwise(self, grid12_pipeline, transport):
        if transport == "shm" and not shm_available():
            pytest.skip("no POSIX shared memory")
        problem, sf, _, bs, wm, tg = grid12_pipeline
        owners, _ = plan_owners(wm, tg, 2, "DW/CY", False)
        # "new values": the original matrix with a shifted diagonal,
        # permuted exactly as the cold path permutes it.
        A_new = problem.A.tocsc().copy()
        A_new.setdiag(A_new.diagonal() + 0.75)
        A_new_perm = permute_spd(A_new, sf.ordering)
        cold = BlockCholesky(bs, A_new_perm).factor().to_csc()

        arena = BlockArena.create(tg) if transport == "shm" else None
        A_perm = sf.A.tocsc()
        ctx = PatternContext(
            pattern_id="warm",
            structure=bs, tg=tg, owners=owners, priorities=None,
            indptr=A_perm.indptr, indices=A_perm.indices,
            shape=tuple(A_perm.shape),
            arena_name=None if arena is None else arena.name,
        )
        try:
            with WorkerPool(nprocs=2) as pool:
                out = pool.run_batch([
                    PoolJob(seq=0, pattern_id="warm",
                            values=A_perm.data, context=ctx,
                            announce=arena is not None),
                    PoolJob(seq=1, pattern_id="warm",
                            values=A_new_perm.data,
                            wait_for=0 if arena is not None else None),
                ], timeout_s=120)
                assert out[1].ok, out[1].error
                empty = sparse.csc_matrix(A_perm.shape)
                warm = _assemble(bs, empty, tg, out[1].results).to_csc()
        finally:
            if arena is not None:
                arena.destroy()
        assert np.array_equal(warm.indptr, cold.indptr)
        assert np.array_equal(warm.indices, cold.indices)
        assert np.array_equal(warm.data, cold.data)
