import pytest

from repro.machine import PARAGON, MachineParams
from repro.machine.params import ZERO_COMM


class TestMachineParams:
    def test_paragon_calibration(self):
        """The paper's §3.1 numbers: 50 us latency, ~40 MB/s bandwidth."""
        assert PARAGON.latency == pytest.approx(50e-6)
        assert PARAGON.bandwidth == pytest.approx(40e6)
        assert PARAGON.flop_rate == pytest.approx(40e6)

    def test_task_time_fixed_cost(self):
        """A zero-flop task still costs the 1000-op overhead (25 us at
        40 Mflops) — the work model's surcharge."""
        assert PARAGON.task_time(0) == pytest.approx(25e-6)

    def test_task_time_linear(self):
        t1 = PARAGON.task_time(1e6)
        t2 = PARAGON.task_time(2e6)
        assert t2 - t1 == pytest.approx(1e6 / PARAGON.flop_rate)

    def test_transfer_time(self):
        t = PARAGON.transfer_time(1000)  # 8000 bytes + header
        assert t == pytest.approx(50e-6 + (8000 + 64) / 40e6)

    def test_message_bytes(self):
        assert PARAGON.message_bytes(10) == 80 + PARAGON.header_bytes

    def test_zero_comm(self):
        assert ZERO_COMM.transfer_time(1e9) == 0.0
        assert ZERO_COMM.send_overhead == 0.0

    def test_frozen(self):
        with pytest.raises(Exception):
            PARAGON.latency = 1.0
