"""Property suite for the structure-aware (supernodal) partitioner.

Hypothesis drives random supernode width profiles and clamp settings
through :class:`SupernodalPartition` and checks the guarantees every
downstream layer (block structure, task graph, arena layout) relies on:

* totality — panel widths sum to n and panels tile the columns;
* clamps — no panel exceeds ``max_width``, and no panel is thinner than
  ``min(min_width, its supernode's width)``;
* determinism — the same symbolic factor yields identical panel arrays;
* the §3.2 invariant — every supernode boundary is a panel boundary
  (panels never straddle supernodes).
"""

from __future__ import annotations

from types import SimpleNamespace

import numpy as np
import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings  # noqa: E402
from hypothesis import strategies as st  # noqa: E402

from repro.blocks import (  # noqa: E402
    BLOCK_POLICIES,
    BlockPartition,
    BlockStructure,
    SupernodalPartition,
    WorkModel,
    make_partition,
)
from repro.blocks.supernodal import SUPERNODAL_MIN_WIDTH  # noqa: E402
from repro.matrices import grid2d_matrix  # noqa: E402
from repro.ordering import order_problem  # noqa: E402
from repro.symbolic import symbolic_factor  # noqa: E402


def _fake_symbolic(snode_widths: list[int]) -> SimpleNamespace:
    """A minimal stand-in exposing exactly what the partitioner reads."""
    ptr = np.concatenate([[0], np.cumsum(snode_widths)]).astype(np.int64)
    n = int(ptr[-1])
    return SimpleNamespace(
        n=n,
        nsupernodes=len(snode_widths),
        snode_ptr=ptr,
        depth=np.zeros(n, dtype=np.int64),
    )


#: Random supernode width profiles: a mix of thin fringes and wide
#: separator-like supernodes (up to 4x a typical max_width).
snode_widths = st.lists(
    st.integers(min_value=1, max_value=400), min_size=1, max_size=40
)

clamps = st.tuples(
    st.integers(min_value=1, max_value=48),      # min_width
    st.integers(min_value=2, max_value=8),       # max_width multiplier
).map(lambda t: (t[0], t[0] * t[1]))


@given(snode_widths, clamps)
@settings(max_examples=200, deadline=None)
def test_widths_sum_and_clamps(widths, clamp):
    lo, hi = clamp
    sf = _fake_symbolic(widths)
    part = SupernodalPartition(sf, min_width=lo, max_width=hi)
    w = part.widths
    assert int(w.sum()) == sf.n
    assert (w >= 1).all()
    assert (w <= hi).all()
    # Min clamp: a panel may be thinner than min_width only when its whole
    # supernode is (a thin supernode becomes its own panel).
    snode_w = np.diff(sf.snode_ptr)[part.panel_snode]
    assert (w >= np.minimum(lo, snode_w)).all()


@given(snode_widths, clamps)
@settings(max_examples=200, deadline=None)
def test_supernode_boundaries_are_panel_boundaries(widths, clamp):
    lo, hi = clamp
    sf = _fake_symbolic(widths)
    part = SupernodalPartition(sf, min_width=lo, max_width=hi)
    panel_bounds = set(part.panel_ptr.tolist())
    assert set(sf.snode_ptr.tolist()) <= panel_bounds
    # ... equivalently, no panel straddles a supernode (§3.2: column
    # subsets are always subsets of supernodes).
    for k in range(part.npanels):
        s = int(part.panel_snode[k])
        assert sf.snode_ptr[s] <= part.panel_ptr[k]
        assert part.panel_ptr[k + 1] <= sf.snode_ptr[s + 1]


@given(snode_widths, clamps)
@settings(max_examples=100, deadline=None)
def test_deterministic(widths, clamp):
    lo, hi = clamp
    sf = _fake_symbolic(widths)
    a = SupernodalPartition(sf, min_width=lo, max_width=hi)
    b = SupernodalPartition(sf, min_width=lo, max_width=hi)
    np.testing.assert_array_equal(a.panel_ptr, b.panel_ptr)
    np.testing.assert_array_equal(a.panel_snode, b.panel_snode)
    np.testing.assert_array_equal(a.panel_of_col, b.panel_of_col)


@given(snode_widths, clamps)
@settings(max_examples=100, deadline=None)
def test_panel_of_col_inverts_panel_ptr(widths, clamp):
    lo, hi = clamp
    sf = _fake_symbolic(widths)
    part = SupernodalPartition(sf, min_width=lo, max_width=hi)
    for k in range(part.npanels):
        cols = np.arange(part.panel_ptr[k], part.panel_ptr[k + 1])
        assert (part.panel_of_col[cols] == k).all()


class TestClampValidation:
    def test_max_must_be_twice_min(self):
        sf = _fake_symbolic([100])
        with pytest.raises(ValueError, match="max_width"):
            SupernodalPartition(sf, min_width=20, max_width=30)

    def test_min_positive(self):
        sf = _fake_symbolic([10])
        with pytest.raises(ValueError, match="min_width"):
            SupernodalPartition(sf, min_width=0, max_width=10)


class TestFactory:
    def test_policies_registry(self):
        assert BLOCK_POLICIES == ("uniform", "supernodal")

    def test_unknown_policy_rejected(self):
        sf = _fake_symbolic([10])
        with pytest.raises(ValueError, match="block_policy"):
            make_partition(sf, block_policy="variable")

    def test_uniform_matches_block_partition(self):
        problem = grid2d_matrix(12)
        sf = symbolic_factor(problem.A, order_problem(problem, "nd"))
        a = make_partition(sf, "uniform", block_size=8)
        b = BlockPartition(sf, 8)
        assert type(a) is BlockPartition
        assert a.policy_name == "uniform"
        np.testing.assert_array_equal(a.panel_ptr, b.panel_ptr)

    def test_supernodal_defaults_track_block_size(self):
        sf = _fake_symbolic([300])
        part = make_partition(sf, "supernodal", block_size=48)
        assert isinstance(part, SupernodalPartition)
        assert part.policy_name == "supernodal"
        assert part.min_width == SUPERNODAL_MIN_WIDTH
        assert part.max_width == 96

    def test_explicit_clamps_win(self):
        sf = _fake_symbolic([300])
        part = make_partition(
            sf, "supernodal", block_size=48, min_width=8, max_width=32
        )
        assert part.min_width == 8
        assert part.max_width == 32
        assert (part.widths <= 32).all()


class TestRealPipeline:
    def test_downstream_layers_accept_supernodal(self):
        """BlockStructure/WorkModel consume a supernodal partition and the
        §3.2 invariant survives amalgamation + clamping end to end."""
        problem = grid2d_matrix(20)
        sf = symbolic_factor(problem.A, order_problem(problem, "nd"))
        part = make_partition(sf, "supernodal", block_size=8)
        structure = BlockStructure(part)
        wm = WorkModel(structure)
        assert structure.npanels == part.npanels
        assert wm.total_flops > 0
        assert set(sf.snode_ptr.tolist()) <= set(part.panel_ptr.tolist())
        assert int(part.widths.sum()) == sf.n

    def test_wide_supernodes_get_wider_panels(self):
        """On a problem with supernodes wider than the uniform B, the
        supernodal policy produces strictly wider max panels."""
        problem = grid2d_matrix(40)
        sf = symbolic_factor(problem.A, order_problem(problem, "nd"))
        uni = make_partition(sf, "uniform", block_size=16)
        sup = make_partition(sf, "supernodal", block_size=16)
        if int(np.diff(sf.snode_ptr).max()) > 16:
            assert int(sup.widths.max()) > int(uni.widths.max())
