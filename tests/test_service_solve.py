"""Solve requests against the service's resident factors.

The warm path is the whole point: after a clean factor job the pool
workers still hold the factor blocks, so ``FactorService.solve`` ships
*only* the permuted RHS panel — zero factor-plane messages, zero pattern
or matrix bytes. Everything that goes wrong degrades to a typed error or
a bitwise-identical sequential fallback tagged ``degraded_sequential``;
nothing hangs, nothing returns a wrong answer.
"""

import numpy as np
import pytest

from repro.matrices import grid2d_matrix
from repro.runtime.faults import CrashSpec, FaultPlan
from repro.service import (
    CircuitBreaker,
    DeadlineExceeded,
    FactorService,
    JobFailed,
    ServiceUnavailable,
    UnknownPatternError,
)

SVC_KW = dict(
    nprocs=2, ordering="nd", block_size=8,
    batch_timeout_s=120, stall_timeout_s=10.0,
)

#: Hard-kills rank 1 at its first solve task (the worker's crash
#: counter spans factor + solve tasks, and the factor already spent the
#: budget), standing in for a SIGKILL mid-solve.
MID_SOLVE_KILL = FaultPlan(seed=0, crash=(CrashSpec(1, 1, hard=True),))


@pytest.fixture(scope="module")
def grid_A():
    return grid2d_matrix(10).A.tocsc()


def _rhs(n, nrhs=3, seed=42):
    return np.random.default_rng(seed).standard_normal((n, nrhs))


class TestWarmSolve:
    def test_warm_solve_ships_only_rhs(self, grid_A):
        """Zero factor-plane traffic: every message of a warm solve is
        on the solve ledger; the factor ledger stays empty."""
        with FactorService(**SVC_KW) as svc:
            jr = svc.factor(grid_A)
            b = _rhs(grid_A.shape[0])
            sres = svc.solve(b, pattern_id=jr.pattern_id)
            assert sres.outcome == "clean"
            assert sres.metrics is not None
            workers = sres.metrics.workers
            assert sum(w.messages_sent for w in workers) == 0
            assert sum(w.wire_bytes_sent for w in workers) == 0
            assert sum(w.solve_messages_sent for w in workers) > 0
            assert sum(w.solve_bytes_sent for w in workers) > 0
            assert np.array_equal(sres.x, jr.solve(b))

    def test_vector_rhs_and_shape(self, grid_A):
        with FactorService(**SVC_KW) as svc:
            jr = svc.factor(grid_A)
            b = _rhs(grid_A.shape[0], 1)[:, 0]
            sres = svc.solve(b, pattern_id=jr.pattern_id)
            assert sres.x.shape == b.shape
            assert np.array_equal(sres.x, jr.solve(b))

    def test_solve_jobs_dedup_by_job_id(self, grid_A):
        """An idempotent retry returns the cached result — the same
        object — without re-running anything."""
        with FactorService(**SVC_KW) as svc:
            jr = svc.factor(grid_A)
            b = _rhs(grid_A.shape[0])
            before = svc.metrics.deduped
            first = svc.solve(b, pattern_id=jr.pattern_id, job_id="s-1")
            again = svc.solve(b, pattern_id=jr.pattern_id, job_id="s-1")
            assert again is first
            assert svc.metrics.deduped == before + 1


class TestTypedErrors:
    def test_unknown_pattern(self, grid_A):
        with FactorService(**SVC_KW) as svc:
            svc.factor(grid_A)
            with pytest.raises(UnknownPatternError):
                svc.solve(_rhs(grid_A.shape[0]), pattern_id="nope")

    def test_bad_rhs_shape(self, grid_A):
        with FactorService(**SVC_KW) as svc:
            jr = svc.factor(grid_A)
            with pytest.raises(JobFailed, match="rhs"):
                svc.solve(
                    np.ones(grid_A.shape[0] + 1),
                    pattern_id=jr.pattern_id,
                )

    def test_deadline_exceeded(self, grid_A):
        """A zero budget can never be met — the typed error fires
        before any answer is fabricated."""
        with FactorService(**SVC_KW) as svc:
            jr = svc.factor(grid_A)
            with pytest.raises(DeadlineExceeded):
                svc.solve(
                    _rhs(grid_A.shape[0]),
                    pattern_id=jr.pattern_id,
                    deadline_s=0.0,
                )

    def test_breaker_open_refuses_solves(self, grid_A):
        """Unlike factor jobs (which degrade sequentially), a solve
        against an open breaker is refused with the typed
        ServiceUnavailable — the client owns the retry."""
        with FactorService(**SVC_KW) as svc:
            jr = svc.factor(grid_A)
            svc.breaker.threshold = 1
            svc.breaker.cooldown_s = 60.0
            svc.breaker.record_failure()
            assert svc.breaker.state == CircuitBreaker.OPEN
            with pytest.raises(ServiceUnavailable):
                svc.solve(_rhs(grid_A.shape[0]),
                          pattern_id=jr.pattern_id)


class TestMidSolveFailure:
    def test_hard_kill_degrades_bitwise(self, grid_A):
        """SIGKILL mid-solve: the pool heals, the service answers from
        the retained factor — tagged, and bitwise-identical to the
        fault-free answer. Never a hang, never a wrong x."""
        with FactorService(**SVC_KW) as svc:
            jr = svc.factor(grid_A)
            b = _rhs(grid_A.shape[0])
            clean = svc.solve(b, pattern_id=jr.pattern_id, job_id="s-ok")
            assert clean.outcome == "clean"
            hurt = svc.solve(
                b, pattern_id=jr.pattern_id, job_id="s-kill",
                fault_plan=MID_SOLVE_KILL,
            )
            assert hurt.outcome == "degraded_sequential"
            assert np.array_equal(hurt.x, clean.x)
            assert hurt.record.outcome == "degraded_sequential"

    def test_residency_lost_until_refactor(self, grid_A):
        """After the healed pool restarts, residency is gone: the next
        solve degrades; a re-factor re-arms the warm path."""
        with FactorService(**SVC_KW) as svc:
            jr = svc.factor(grid_A)
            b = _rhs(grid_A.shape[0])
            ref = svc.solve(b, pattern_id=jr.pattern_id, job_id="s-a")
            svc.solve(b, pattern_id=jr.pattern_id, job_id="s-b",
                      fault_plan=MID_SOLVE_KILL)
            after = svc.solve(b, pattern_id=jr.pattern_id, job_id="s-c")
            assert after.outcome == "degraded_sequential"
            assert np.array_equal(after.x, ref.x)
            svc.factor(pattern_id=jr.pattern_id, values=grid_A.data)
            warm = svc.solve(b, pattern_id=jr.pattern_id, job_id="s-d")
            assert warm.outcome == "clean"
            assert np.array_equal(warm.x, ref.x)


class TestRecords:
    def test_solve_records_enter_service_metrics(self, grid_A):
        with FactorService(**SVC_KW) as svc:
            jr = svc.factor(grid_A)
            n0 = len(svc.metrics.records)
            sres = svc.solve(_rhs(grid_A.shape[0]),
                             pattern_id=jr.pattern_id)
            recs = svc.metrics.records[n0:]
            assert any(r.job_id == sres.job_id for r in recs)
            assert sres.record.status == "ok"
            assert sres.record.e2e_s >= sres.record.run_s >= 0.0
