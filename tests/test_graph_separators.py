import numpy as np

from repro.graph import AdjacencyGraph, vertex_separator_from_levels
from repro.graph.separators import geometric_separator
from repro.matrices import cube3d_matrix, grid2d_matrix


def check_separator(graph, part_a, sep, part_b):
    """No edge may join part_a and part_b."""
    in_a = np.zeros(graph.n, dtype=bool)
    in_a[part_a] = True
    for v in part_b:
        assert not in_a[graph.neighbors(int(v))].any()


class TestLevelSeparator:
    def test_is_separator_grid(self):
        p = grid2d_matrix(8)
        g = AdjacencyGraph.from_sparse(p.A)
        verts = np.arange(g.n)
        a, s, b = vertex_separator_from_levels(g, verts)
        assert a.size and b.size
        check_separator(g, a, s, b)

    def test_covers_all_vertices(self):
        p = grid2d_matrix(7)
        g = AdjacencyGraph.from_sparse(p.A)
        verts = np.arange(g.n)
        a, s, b = vertex_separator_from_levels(g, verts)
        allv = np.sort(np.concatenate([a, s, b]))
        assert np.array_equal(allv, verts)

    def test_tiny_input(self):
        p = grid2d_matrix(4)
        g = AdjacencyGraph.from_sparse(p.A)
        a, s, b = vertex_separator_from_levels(g, np.array([3, 7]))
        assert a.size + s.size + b.size == 2

    def test_reasonable_balance(self):
        p = grid2d_matrix(12)
        g = AdjacencyGraph.from_sparse(p.A)
        a, s, b = vertex_separator_from_levels(g, np.arange(g.n))
        assert min(a.size, b.size) > 0.15 * g.n


class TestGeometricSeparator:
    def test_grid_plane(self):
        p = grid2d_matrix(9)
        verts = np.arange(p.n)
        a, s, b = geometric_separator(verts, p.coords)
        # median plane of a 9x9 grid: one row/column of 9 vertices
        assert s.size == 9
        assert a.size == b.size == 36

    def test_separates_cube(self):
        p = cube3d_matrix(5)
        g = AdjacencyGraph.from_sparse(p.A)
        verts = np.arange(p.n)
        a, s, b = geometric_separator(verts, p.coords)
        check_separator(g, a, s, b)

    def test_degenerate_single_plane(self):
        coords = np.zeros((6, 2))
        verts = np.arange(6)
        a, s, b = geometric_separator(verts, coords)
        assert a.size + s.size + b.size == 6
