import numpy as np
import pytest

from repro.fanout import block_owners
from repro.mapping import (
    ProcessorGrid,
    balance_metrics,
    cyclic_map,
    heuristic_map,
    square_grid,
)
from repro.mapping.balance import overall_balance_from_owners
from repro.mapping.heuristics import HEURISTICS


class TestBalanceMetrics:
    def test_bounds(self, grid12_pipeline):
        wm = grid12_pipeline[4]
        bal = balance_metrics(wm, cyclic_map(wm.npanels, square_grid(9)))
        for v in (bal.overall, bal.row, bal.column, bal.diagonal):
            assert 0 < v <= 1

    def test_overall_below_decomposed(self, grid12_pipeline):
        """overall <= row, column, diagonal balance — they average within
        processor rows/columns/diagonals, overall does not."""
        wm = grid12_pipeline[4]
        for h in HEURISTICS:
            cmap = heuristic_map(wm, square_grid(9), h, h)
            bal = balance_metrics(wm, cmap)
            assert bal.overall <= bal.row + 1e-12
            assert bal.overall <= bal.column + 1e-12
            assert bal.overall <= bal.diagonal + 1e-12

    def test_single_processor_perfect(self, grid12_pipeline):
        wm = grid12_pipeline[4]
        bal = balance_metrics(wm, cyclic_map(wm.npanels, ProcessorGrid(1, 1)))
        assert bal.overall == pytest.approx(1.0)

    def test_diag_none_on_rectangular(self, grid12_pipeline):
        wm = grid12_pipeline[4]
        bal = balance_metrics(wm, cyclic_map(wm.npanels, ProcessorGrid(2, 3)))
        assert bal.diagonal is None

    def test_heuristics_beat_cyclic_overall(self, grid12_pipeline):
        wm = grid12_pipeline[4]
        g = square_grid(9)
        cyc = balance_metrics(wm, cyclic_map(wm.npanels, g)).overall
        best = max(
            balance_metrics(wm, heuristic_map(wm, g, rh, ch)).overall
            for rh in ("DW", "DN", "ID")
            for ch in ("CY", "DW")
        )
        assert best > cyc

    def test_as_row(self, grid12_pipeline):
        wm = grid12_pipeline[4]
        bal = balance_metrics(wm, cyclic_map(wm.npanels, square_grid(4)))
        row = bal.as_row()
        assert row == (bal.row, bal.column, bal.diagonal, bal.overall)


class TestOwnersBalance:
    def test_matches_cartesian_when_no_domains(self, grid12_pipeline):
        wm, tg = grid12_pipeline[4], grid12_pipeline[5]
        g = square_grid(9)
        cmap = cyclic_map(wm.npanels, g)
        owners = block_owners(tg, cmap)
        a = overall_balance_from_owners(wm, owners, g.P)
        b = balance_metrics(wm, cmap).overall
        assert a == pytest.approx(b)
