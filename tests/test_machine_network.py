import pytest

from repro.fanout import run_fanout
from repro.machine.network import MeshTopology
from repro.machine.params import PARAGON, MachineParams
from repro.mapping import cyclic_map, square_grid


class TestMeshTopology:
    def test_positions_roundtrip(self):
        mesh = MeshTopology(3, 4)
        assert mesh.P == 12
        assert mesh.position(0) == (0, 0)
        assert mesh.position(11) == (2, 3)

    def test_hops_manhattan(self):
        mesh = MeshTopology(4, 4)
        assert mesh.hops(0, 0) == 0
        assert mesh.hops(0, 15) == 6  # (0,0) -> (3,3)
        assert mesh.hops(5, 6) == 1

    def test_hops_symmetric(self):
        mesh = MeshTopology(3, 5)
        for a in range(0, 15, 4):
            for b in range(0, 15, 3):
                assert mesh.hops(a, b) == mesh.hops(b, a)

    def test_diameter(self):
        assert MeshTopology(4, 7).diameter == 9

    def test_for_processors(self):
        mesh = MeshTopology.for_processors(12)
        assert mesh.P == 12
        assert mesh.rows <= mesh.cols

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            MeshTopology(2, 2).position(4)


class TestTopologyInSimulation:
    def test_zero_hop_latency_unchanged(self, grid12_pipeline):
        tg = grid12_pipeline[5]
        cmap = cyclic_map(tg.npanels, square_grid(9))
        base = run_fanout(tg, cmap, machine=PARAGON)
        with_topo = run_fanout(
            tg, cmap, machine=PARAGON, topology=MeshTopology.for_processors(9)
        )
        assert base.t_parallel == pytest.approx(with_topo.t_parallel)

    def test_hop_latency_slows(self, grid12_pipeline):
        tg = grid12_pipeline[5]
        cmap = cyclic_map(tg.npanels, square_grid(9))
        base = run_fanout(tg, cmap, machine=PARAGON)
        hoppy = run_fanout(
            tg, cmap,
            machine=MachineParams(hop_latency=200e-6),
            topology=MeshTopology.for_processors(9),
        )
        assert hoppy.t_parallel > base.t_parallel

    def test_wormhole_insensitivity(self, grid12_pipeline):
        """With Paragon-realistic per-hop cost (sub-microsecond), topology
        barely matters — the paper's flat-machine assumption."""
        tg = grid12_pipeline[5]
        cmap = cyclic_map(tg.npanels, square_grid(9))
        base = run_fanout(tg, cmap, machine=PARAGON)
        worm = run_fanout(
            tg, cmap,
            machine=MachineParams(hop_latency=0.2e-6),
            topology=MeshTopology.for_processors(9),
        )
        assert worm.t_parallel <= base.t_parallel * 1.02
