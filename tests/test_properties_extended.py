"""Property-based tests over the extended subsystems: HB format, the
multifrontal driver, memory accounting, and priority policies."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.analysis.memory import memory_usage
from repro.blocks import BlockPartition, BlockStructure, WorkModel
from repro.fanout import TaskGraph, block_owners, simulate_fanout
from repro.fanout.priorities import task_priorities
from repro.machine.params import PARAGON, ZERO_COMM
from repro.mapping import ProcessorGrid, cyclic_map
from repro.matrices.hb import read_harwell_boeing, write_harwell_boeing
from repro.matrices.spd import random_spd_sparse
from repro.numeric import BlockCholesky
from repro.numeric.multifrontal import MultifrontalCholesky
from repro.symbolic import symbolic_factor


@settings(deadline=None, max_examples=10)
@given(st.integers(5, 40), st.integers(0, 10_000))
def test_hb_roundtrip_random_spd(n, seed):
    import tempfile
    from pathlib import Path

    A = random_spd_sparse(n, density=min(1.0, 5.0 / n), seed=seed)
    with tempfile.TemporaryDirectory() as d:
        path = Path(d) / "m.rsa"
        write_harwell_boeing(path, A)
        B = read_harwell_boeing(path)
    assert abs(A - B).max() < 1e-12


@settings(deadline=None, max_examples=8)
@given(st.integers(10, 45), st.integers(0, 10_000))
def test_multifrontal_equals_block_fanout(n, seed):
    A = random_spd_sparse(n, density=min(1.0, 5.0 / n), seed=seed)
    sf = symbolic_factor(A, None)
    bs = BlockStructure(BlockPartition(sf, 6))
    L_bf = BlockCholesky(bs, sf.A).factor().to_csc()
    L_mf = MultifrontalCholesky(sf).factor().to_csc()
    assert abs(L_bf - L_mf).max() < 1e-9


@settings(deadline=None, max_examples=8)
@given(st.integers(15, 45), st.integers(0, 1000), st.integers(1, 3),
       st.integers(1, 3))
def test_memory_conservation_any_mapping(n, seed, pr, pc):
    """Owned bytes are conserved across mappings; received is bounded by
    the total factor size times the processor count."""
    A = random_spd_sparse(n, density=0.12, seed=seed)
    sf = symbolic_factor(A, None)
    tg = TaskGraph(WorkModel(BlockStructure(BlockPartition(sf, 5))))
    g = ProcessorGrid(pr, pc)
    owners = block_owners(tg, cyclic_map(tg.npanels, g))
    rep = memory_usage(tg, owners, g.P)
    factor_bytes = int(tg.block_words.sum()) * PARAGON.word_bytes
    assert int(rep.owned_bytes.sum()) == factor_bytes
    assert int(rep.received_bound_bytes.max()) <= factor_bytes * 1


@settings(deadline=None, max_examples=6)
@given(
    st.integers(20, 45),
    st.integers(0, 500),
    st.sampled_from(["fifo", "column", "depth", "bottom_level"]),
)
def test_any_priority_policy_yields_valid_schedule(n, seed, policy):
    A = random_spd_sparse(n, density=0.12, seed=seed)
    sf = symbolic_factor(A, None)
    part = BlockPartition(sf, 5)
    bs = BlockStructure(part)
    tg = TaskGraph(WorkModel(bs))
    g = ProcessorGrid(2, 2)
    owners = block_owners(tg, cyclic_map(tg.npanels, g))
    prio = task_priorities(tg, policy, depth=part.panel_depths())
    r = simulate_fanout(
        tg, owners, 4, machine=ZERO_COMM, priorities=prio,
        record_schedule=True,
    )
    L = BlockCholesky(bs, sf.A).run_schedule(tg, r.schedule).to_csc()
    assert abs(L @ L.T - sf.A).max() < 1e-8
