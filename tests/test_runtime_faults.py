"""The chaos layer in isolation: wire integrity (CRC32, typed errors,
control frames), fault-plan semantics (determinism, serialization,
scenarios, restart filtering), and the fault-injecting link."""

import numpy as np
import pytest

from repro.runtime import wire
from repro.runtime.faults import (
    FAULT_CLASSES,
    MESSAGE_FAULTS,
    CrashSpec,
    FaultInjector,
    FaultPlan,
    FaultyLink,
)
from repro.runtime.links import Link
from repro.runtime.wire import CorruptFrameError, WireError


class _ListQueue:
    """A queue stand-in capturing every put frame in order."""

    def __init__(self):
        self.items = []

    def put(self, frame):
        self.items.append(frame)


def _block_frame(src=0, block=5, I=2, J=1, shape=(3, 3)):
    rng = np.random.default_rng(0)
    return wire.pack_block(src, block, I, J, rng.random(shape))


# ----------------------------------------------------------------------
# Wire integrity
# ----------------------------------------------------------------------
class TestWireIntegrity:
    def test_block_roundtrip_survives_crc(self):
        arr = np.arange(12, dtype=float).reshape(3, 4)
        msg = wire.unpack(wire.pack_block(2, 7, 5, 1, arr))
        assert (msg.kind, msg.src, msg.block) == (wire.BLOCK, 2, 7)
        np.testing.assert_array_equal(msg.payload, arr)

    def test_diagonal_roundtrip_packed_triangle(self):
        a = np.tril(np.arange(1.0, 17.0).reshape(4, 4))
        frame = wire.pack_block(0, 3, 2, 2, a)
        # Triangle storage: 10 words, not 16.
        assert len(frame) == wire.HEADER_BYTES + 8 * 10
        np.testing.assert_array_equal(wire.unpack(frame).payload, a)

    @pytest.mark.parametrize("offset_from", ["header", "payload"])
    def test_bit_flip_detected(self, offset_from):
        frame = bytearray(_block_frame())
        pos = 9 if offset_from == "header" else wire.HEADER_BYTES + 3
        frame[pos] ^= 0x10
        with pytest.raises(CorruptFrameError):
            wire.unpack(bytes(frame))

    def test_corrupt_error_carries_addressing(self):
        frame = bytearray(_block_frame(src=1, block=5))
        frame[-1] ^= 1
        with pytest.raises(CorruptFrameError) as info:
            wire.unpack(bytes(frame))
        assert info.value.src == 1
        assert info.value.block == 5

    def test_verify_false_skips_crc(self):
        frame = bytearray(_block_frame())
        frame[-1] ^= 1
        msg = wire.unpack(bytes(frame), verify=False)
        assert msg.kind == wire.BLOCK

    @pytest.mark.parametrize("mutation", ["truncate", "magic", "nwords"])
    def test_malformed_frames_raise_typed_error(self, mutation):
        frame = bytearray(_block_frame())
        if mutation == "truncate":
            frame = frame[: wire.HEADER_BYTES - 5]
        elif mutation == "magic":
            frame[:4] = b"XXXX"
        else:  # promise more payload words than the frame carries
            frame[13:21] = (10**6).to_bytes(8, "little")
        with pytest.raises(WireError):
            wire.unpack(bytes(frame))
        # WireError is a ValueError: pre-existing callers keep working.
        assert issubclass(WireError, ValueError)

    def test_control_frames_roundtrip(self):
        nack = wire.unpack(wire.pack_nack(2, 9))
        assert (nack.kind, nack.src, nack.block) == (wire.NACK, 2, 9)
        assert nack.payload is None
        done = wire.unpack(wire.pack_done(3))
        assert (done.kind, done.src) == (wire.DONE, 3)
        abort = wire.unpack(wire.pack_abort(1))
        assert abort.kind == wire.ABORT

    def test_cheap_peeks_match_full_decode(self):
        frame = _block_frame(src=1, block=42)
        assert wire.frame_kind(frame) == wire.BLOCK
        assert wire.frame_block(frame) == 42
        assert wire.frame_kind(wire.pack_nack(0, 7)) == wire.NACK
        assert wire.frame_block(wire.pack_nack(0, 7)) == 7
        with pytest.raises(WireError):
            wire.frame_kind(b"xy")


# ----------------------------------------------------------------------
# FaultPlan
# ----------------------------------------------------------------------
class TestFaultPlan:
    def test_inactive_by_default(self):
        plan = FaultPlan(seed=3)
        assert not plan.active
        assert not plan.message_faults_active

    @pytest.mark.parametrize("name", FAULT_CLASSES)
    def test_scenarios_cover_every_fault_class(self, name):
        plan = FaultPlan.scenario(name, seed=1, rate=0.25)
        assert plan.active
        if name in MESSAGE_FAULTS:
            assert getattr(plan, name) == 0.25
        elif name == "crash":
            assert plan.crash_for(1) is not None
        else:
            assert plan.slow_for(1) > 0

    def test_scenario_none_and_unknown(self):
        assert not FaultPlan.scenario("none").active
        with pytest.raises(KeyError):
            FaultPlan.scenario("cosmic-rays")

    def test_serialization_roundtrip(self):
        plan = FaultPlan(
            seed=7, drop=0.1, corrupt=0.2,
            crash=(CrashSpec(1, 4, hard=True),), slow={2: 0.01},
        )
        assert FaultPlan.from_dict(plan.to_dict()) == plan
        assert FaultPlan.from_json(plan.to_json()) == plan

    def test_transient_crash_filtered_on_restart(self):
        plan = FaultPlan.scenario("crash", seed=0)
        assert plan.for_attempt(0).crash_for(1) is not None
        assert plan.for_attempt(1).crash_for(1) is None
        assert plan.for_attempt(1).attempt == 1

    def test_persistent_crash_survives_restart(self):
        plan = FaultPlan.scenario("crash-persistent", seed=0)
        assert plan.for_attempt(3).crash_for(1) is not None

    def test_message_faults_rekeyed_not_dropped_on_restart(self):
        plan = FaultPlan.scenario("drop", rate=0.3)
        again = plan.for_attempt(2)
        assert again.drop == 0.3 and again.attempt == 2


# ----------------------------------------------------------------------
# FaultyLink
# ----------------------------------------------------------------------
def _faulty_link(plan, src=0, dst=1):
    injector = FaultInjector(plan, src)
    q = _ListQueue()
    return FaultyLink(src, dst, q, injector), q, injector


class TestFaultyLink:
    def test_wrap_links_only_when_message_faults_active(self):
        links = {1: Link(0, 1, _ListQueue())}
        crash_only = FaultPlan.scenario("crash")
        assert FaultInjector(crash_only, 0).wrap_links(links) is links
        wrapped = FaultInjector(
            FaultPlan.scenario("drop", rate=1.0), 0
        ).wrap_links(links)
        assert isinstance(wrapped[1], FaultyLink)

    def test_drop_eats_frame_but_counts_it(self):
        link, q, injector = _faulty_link(FaultPlan(drop=1.0))
        frame = _block_frame()
        link.send(frame)
        assert q.items == []
        assert link.messages == 1 and link.bytes == len(frame)
        assert injector.injected["drop"] == 1

    def test_duplicate_sends_twice(self):
        link, q, injector = _faulty_link(FaultPlan(duplicate=1.0))
        link.send(_block_frame())
        assert len(q.items) == 2
        assert q.items[0] == q.items[1]
        assert injector.injected["duplicate"] == 1

    def test_corrupt_payload_fails_crc(self):
        link, q, injector = _faulty_link(FaultPlan(corrupt=1.0))
        link.send(_block_frame())
        assert injector.injected["corrupt"] == 1
        with pytest.raises(CorruptFrameError):
            wire.unpack(q.items[0])

    def test_corrupt_header_fails_decode(self):
        link, q, injector = _faulty_link(FaultPlan(corrupt_header=1.0))
        link.send(_block_frame())
        assert injector.injected["corrupt_header"] == 1
        with pytest.raises(WireError):
            wire.unpack(q.items[0])

    def test_delay_reorders_and_flush_releases(self):
        link, q, _ = _faulty_link(FaultPlan(delay=1.0, delay_messages=2))
        f1 = _block_frame(block=1, I=1, J=0)
        f2 = _block_frame(block=2, I=2, J=0)
        link.send(f1)
        assert q.items == []  # held
        link.send(f2)
        assert q.items == [f1]  # released by the second send: reordered
        link.flush()
        assert q.items == [f1, f2]
        link.flush()
        assert len(q.items) == 2  # flush is idempotent

    def test_control_frames_never_faulted(self):
        link, q, injector = _faulty_link(
            FaultPlan(drop=1.0, corrupt=1.0, delay=1.0)
        )
        link.send(wire.pack_nack(0, 3))
        link.send_control(wire.pack_done(0))
        assert len(q.items) == 2
        wire.unpack(q.items[0])  # still intact
        wire.unpack(q.items[1])
        assert all(v == 0 for v in injector.injected.values())
        assert link.control_messages == 1

    def test_decisions_deterministic_across_instances(self):
        """Same seed, link and send sequence -> identical fates."""
        def run(seed):
            link, q, injector = _faulty_link(
                FaultPlan(seed=seed, drop=0.4, duplicate=0.4, corrupt=0.2)
            )
            for i in range(30):
                link.send(_block_frame(block=i % 7, I=i % 7, J=0))
            return [bytes(f) for f in q.items], dict(injector.injected)

        frames_a, counts_a = run(seed=5)
        frames_b, counts_b = run(seed=5)
        assert frames_a == frames_b
        assert counts_a == counts_b
        frames_c, _ = run(seed=6)
        assert frames_a != frames_c

    def test_occurrence_counter_varies_repeat_sends(self):
        """Retransmits of one block draw fresh decisions (else a dropped
        block would be dropped forever)."""
        plan = FaultPlan(seed=0, drop=0.5)
        link, q, injector = _faulty_link(plan)
        for _ in range(40):
            link.send(_block_frame(block=3))
        assert 0 < injector.injected["drop"] < 40
        assert len(q.items) == 40 - injector.injected["drop"]

    def test_resend_counts_retransmit(self):
        link, q, _ = _faulty_link(FaultPlan(seed=0, drop=0.0))
        link.resend(_block_frame())
        assert link.retransmits == 1 and link.messages == 1
