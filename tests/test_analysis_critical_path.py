import numpy as np
import pytest

from repro.analysis import critical_path
from repro.fanout import block_owners, run_fanout, simulate_fanout
from repro.machine.params import ZERO_COMM, MachineParams
from repro.mapping import ProcessorGrid, cyclic_map, square_grid
from repro.matrices import dense_matrix
from repro.blocks import BlockPartition, BlockStructure, WorkModel
from repro.fanout import TaskGraph
from repro.symbolic import symbolic_factor


class TestCriticalPath:
    def test_bounded_by_sequential(self, grid12_pipeline):
        tg = grid12_pipeline[5]
        cp = critical_path(tg)
        assert 0 < cp.length_seconds <= cp.t_sequential

    def test_lower_bounds_any_simulation(self, grid12_pipeline):
        """No schedule can beat the critical path (zero-comm machine)."""
        tg = grid12_pipeline[5]
        cp = critical_path(tg, ZERO_COMM)
        for P in (4, 9, 16, 100):
            g = ProcessorGrid(1, P)
            r = run_fanout(tg, cyclic_map(tg.npanels, g), machine=ZERO_COMM)
            assert r.t_parallel >= cp.length_seconds - 1e-12

    def test_dense_path_is_panel_chain(self):
        """For a dense matrix the path includes every panel's BFAC chained
        through BDIV/BMOD: path grows with N."""
        p = dense_matrix(48)
        sf = symbolic_factor(p.A, None)
        short = critical_path(
            TaskGraph(WorkModel(BlockStructure(BlockPartition(sf, 24))))
        )
        long = critical_path(
            TaskGraph(WorkModel(BlockStructure(BlockPartition(sf, 8))))
        )
        # more panels -> more chained fixed costs, but less per-task time;
        # both must stay below t_seq
        assert short.length_seconds <= short.t_sequential
        assert long.length_seconds <= long.t_sequential

    def test_max_speedup_and_efficiency(self, grid12_pipeline):
        tg = grid12_pipeline[5]
        cp = critical_path(tg)
        assert cp.max_speedup >= 1.0
        assert cp.max_efficiency(1) <= 1.0
        assert cp.max_efficiency(10**6) < 0.01
