import numpy as np

from repro.graph import AdjacencyGraph, reverse_cuthill_mckee
from repro.matrices import grid2d_matrix
from repro.matrices.spd import random_spd_sparse
from repro.ordering.base import permute_spd
from repro.util.arrays import is_permutation


def bandwidth(A):
    coo = A.tocoo()
    return int(np.abs(coo.row - coo.col).max())


class TestRCM:
    def test_is_permutation(self):
        p = grid2d_matrix(6)
        g = AdjacencyGraph.from_sparse(p.A)
        perm = reverse_cuthill_mckee(g)
        assert is_permutation(perm)

    def test_reduces_bandwidth_on_shuffled_grid(self):
        p = grid2d_matrix(10)
        rng = np.random.default_rng(0)
        shuffle = rng.permutation(p.n)
        A = permute_spd(p.A, shuffle)
        g = AdjacencyGraph.from_sparse(A)
        perm = reverse_cuthill_mckee(g)
        assert bandwidth(permute_spd(A, perm)) < bandwidth(A) / 2

    def test_disconnected(self):
        A = random_spd_sparse(30, density=0.02, seed=2)
        g = AdjacencyGraph.from_sparse(A)
        perm = reverse_cuthill_mckee(g)
        assert is_permutation(perm)

    def test_deterministic(self):
        p = grid2d_matrix(7)
        g = AdjacencyGraph.from_sparse(p.A)
        assert np.array_equal(reverse_cuthill_mckee(g), reverse_cuthill_mckee(g))
