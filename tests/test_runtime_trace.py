"""Conformance tests for the structured runtime trace.

A traced run must tell the same story as the metrics layer: every task
exactly once, per-worker event order coherent, message counts/bytes equal
to both the measured RunMetrics and the static communication-volume
prediction, and the trace-replay validator must reconcile all of it
exactly on fault-free runs. Chaos runs must leave fault/recovery
fingerprints in the trace.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.comm_volume import communication_volume
from repro.analysis.trace_replay import replay_trace, validate_trace
from repro.runtime import (
    CrashSpec,
    FaultPlan,
    mp_block_cholesky,
    plan_owners,
    run_with_recovery,
)
from repro.runtime.trace import DEFAULT_CAPACITY, RunTrace, TraceRecorder


@pytest.fixture(scope="module")
def traced_run(grid12_pipeline):
    """One fault-free traced P=2 run, shared across the module."""
    _, sf, _, bs, wm, tg = grid12_pipeline
    owners, name = plan_owners(wm, tg, 2, "DW/CY")
    res = mp_block_cholesky(
        bs, sf.A, tg, nprocs=2, mapping="DW/CY", trace=True
    )
    return res, tg, owners


class TestFaultFreeConformance:
    def test_trace_present_and_complete(self, traced_run):
        res, tg, owners = traced_run
        tr = res.trace
        assert tr is not None
        assert tr.total_dropped == 0
        assert tr.attempts == [0]
        assert tr.nprocs == 2
        assert tr.meta["mapping"] == "DW/CY"

    def test_every_task_exactly_once(self, traced_run):
        res, tg, owners = traced_run
        tids = [
            e.args["tid"] for e in res.trace.events if e.cat == "task"
        ]
        assert len(tids) == tg.ntasks
        assert len(set(tids)) == tg.ntasks
        assert sorted(tids) == list(range(tg.ntasks))

    def test_tasks_ran_on_their_owner(self, traced_run):
        res, tg, owners = traced_run
        for e in res.trace.events:
            if e.cat == "task":
                assert e.rank == owners[e.args["block"]]

    def test_per_worker_event_order_monotone(self, traced_run):
        res, tg, owners = traced_run
        for rank, events in res.trace.per_worker(0).items():
            ends = [e.t1 for e in events]
            assert all(a <= b for a, b in zip(ends, ends[1:]))
            assert all(e.t0 <= e.t1 for e in events)

    def test_messages_match_metrics_and_prediction(self, traced_run):
        res, tg, owners = traced_run
        rep = replay_trace(res.trace)
        met = res.metrics
        assert int(rep.messages_sent.sum()) == met.messages_total
        assert int(rep.bytes_sent.sum()) == met.bytes_total
        predicted = communication_volume(tg, owners)
        assert int(rep.messages_sent.sum()) == predicted.messages
        assert int(rep.bytes_sent.sum()) == predicted.bytes
        # Conservation inside the run: every sent frame was received.
        assert int(rep.messages_received.sum()) == met.messages_total

    def test_replay_reconciles_exactly(self, traced_run):
        res, tg, owners = traced_run
        report = validate_trace(
            res.trace, metrics=res.metrics, tg=tg, owners=owners,
            strict=True,
        )
        assert report.ok
        rep = report.replay
        for w in res.metrics.workers:
            # Bitwise-equal float sums: the trace mirrors every timeline
            # segment with identical endpoints in identical order.
            assert rep.busy_s[w.rank] == w.busy_s
            assert rep.comm_s[w.rank] == w.comm_s
            assert rep.idle_s[w.rank] == w.idle_s
            assert rep.work[w.rank] == w.work_executed
        assert abs(rep.work_balance - res.metrics.work_balance) < 1e-9

    def test_trace_counters_in_metrics(self, traced_run):
        res, tg, owners = traced_run
        for w in res.metrics.workers:
            per_rank = [
                e for e in res.trace.events if e.rank == w.rank
            ]
            assert w.trace_events == len(per_rank)
            assert w.trace_dropped == 0

    def test_serialization_round_trip(self, traced_run, tmp_path):
        res, tg, owners = traced_run
        path = tmp_path / "run.trace.json"
        res.trace.dump(path)
        back = RunTrace.load(path)
        assert back.meta == res.trace.meta
        assert back.events == res.trace.events
        rep = validate_trace(back, metrics=res.metrics, strict=True)
        assert rep.ok

    def test_chrome_export_shape(self, traced_run):
        res, tg, owners = traced_run
        doc = res.trace.to_chrome()
        events = doc["traceEvents"]
        spans = [e for e in events if e.get("ph") == "X"]
        metas = [e for e in events if e.get("ph") == "M"]
        assert len(spans) == sum(
            1 for e in res.trace.events if e.cat != "mark"
        )
        assert {m["args"]["name"] for m in metas} >= {
            "worker 0", "worker 1",
        }
        for s in spans:
            assert s["dur"] >= 0
            assert s["tid"] in (0, 1)

    def test_gantt_renders(self, traced_run):
        res, tg, owners = traced_run
        chart = res.trace.gantt(width=48)
        assert "w0" in chart and "w1" in chart
        assert "#" in chart  # some busy time is always visible


class TestTracingOff:
    def test_no_trace_by_default(self, grid12_pipeline):
        _, sf, _, bs, wm, tg = grid12_pipeline
        res = mp_block_cholesky(bs, sf.A, tg, nprocs=2, mapping="cyclic")
        assert res.trace is None
        assert all(w.trace_events == 0 for w in res.metrics.workers)

    def test_capacity_validation(self, grid12_pipeline):
        _, sf, _, bs, wm, tg = grid12_pipeline
        with pytest.raises(ValueError):
            mp_block_cholesky(
                bs, sf.A, tg, nprocs=2, mapping="cyclic", trace=-4
            )

    def test_ring_drops_oldest(self):
        rec = TraceRecorder(capacity=4)
        for i in range(10):
            rec.mark(f"m{i}", float(i))
        snap = rec.snapshot(rank=0)
        assert snap.dropped == 6
        assert [name for _cat, name, *_ in snap.events] == [
            "m6", "m7", "m8", "m9",
        ]

    def test_default_capacity_is_large(self):
        assert DEFAULT_CAPACITY >= 1 << 16


class TestChaosTraces:
    def test_corrupt_frames_leave_fingerprints(self, grid12_pipeline):
        _, sf, _, bs, wm, tg = grid12_pipeline
        plan = FaultPlan(seed=123, corrupt=0.08)
        res = mp_block_cholesky(
            bs, sf.A, tg, nprocs=2, mapping="cyclic",
            fault_plan=plan, trace=True,
        )
        tr = res.trace
        names = {e.name for e in tr.events}
        injected = res.metrics.faults_injected_total.get("corrupt", 0)
        assert injected > 0, "plan injected nothing; raise the rate"
        assert "frame_rejected" in names
        assert "nack_sent" in names
        assert "retransmit" in names
        rejected = sum(1 for e in tr.events if e.name == "frame_rejected")
        assert rejected == res.metrics.frames_rejected_total
        retrans = sum(1 for e in tr.events if e.name == "retransmit")
        assert retrans == res.metrics.retransmits_total
        # Replay still structurally sound, with relaxed accounting.
        rep = validate_trace(tr, metrics=res.metrics, faulty=True)
        assert rep.ok, rep.failures

    def test_crash_recovery_stitches_attempts(self, grid12_pipeline):
        _, sf, _, bs, wm, tg = grid12_pipeline
        plan = FaultPlan(seed=7, crash=(CrashSpec(rank=1, after_tasks=5),))
        res = run_with_recovery(
            bs, sf.A, tg, nprocs=2, mapping="cyclic",
            fault_plan=plan, trace=True,
        )
        assert res.failure_report.outcome == "recovered"
        tr = res.trace
        assert tr.attempts == [0, 1]
        marks = {e.name for e in tr.events if e.cat == "mark"}
        # The salvaged attempt-0 trace carries the crash and the abort
        # fan-out; the restarted attempt preloads the checkpoint.
        assert "crash" in marks
        assert "abort_sent" in marks or "abort_recv" in marks
        assert "checkpoint_load" in marks
        crash_events = [e for e in tr.events if e.name == "crash"]
        assert all(e.attempt == 0 for e in crash_events)
        loads = [e for e in tr.events if e.name == "checkpoint_load"]
        assert all(e.attempt == 1 for e in loads)
        # The final attempt's replay is still coherent.
        rep = validate_trace(tr, attempt=1, faulty=True)
        assert rep.ok, rep.failures
