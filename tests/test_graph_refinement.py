import numpy as np
import pytest

from repro.graph import AdjacencyGraph, vertex_separator_from_levels
from repro.graph.refinement import refine_separator, separator_is_valid
from repro.matrices import grid2d_matrix
from repro.matrices.spd import random_spd_sparse
from repro.ordering import nested_dissection
from repro.symbolic import symbolic_factor
from repro.util.arrays import is_permutation


def split(graph):
    """Separator of the largest connected component."""
    from repro.graph import connected_components

    comps = connected_components(graph)
    comp = max(comps, key=lambda c: c.shape[0])
    return vertex_separator_from_levels(graph, comp)


class TestRefineSeparator:
    def test_output_still_valid(self):
        A = random_spd_sparse(120, density=0.05, seed=1)
        g = AdjacencyGraph.from_sparse(A)
        a, s, b = split(g)
        ra, rs, rb = refine_separator(g, a, s, b)
        assert separator_is_valid(g, ra, rb)

    def test_covers_all_vertices(self):
        A = random_spd_sparse(100, density=0.08, seed=2)
        g = AdjacencyGraph.from_sparse(A)
        a, s, b = split(g)
        ra, rs, rb = refine_separator(g, a, s, b)
        combined = np.sort(np.concatenate([ra, rs, rb]))
        original = np.sort(np.concatenate([a, s, b]))
        assert np.array_equal(combined, original)

    def test_never_grows_separator(self):
        for seed in (3, 4, 5):
            A = random_spd_sparse(150, density=0.04, seed=seed)
            g = AdjacencyGraph.from_sparse(A)
            a, s, b = split(g)
            _, rs, _ = refine_separator(g, a, s, b)
            assert rs.size <= s.size

    def test_grid_separator_near_optimal_untouched(self):
        """A one-plane grid separator cannot shrink below k-ish."""
        p = grid2d_matrix(10)
        g = AdjacencyGraph.from_sparse(p.A)
        a, s, b = split(g)
        _, rs, _ = refine_separator(g, a, s, b)
        assert rs.size <= s.size
        assert separator_is_valid(
            g, *(lambda t: (t[0], t[2]))(refine_separator(g, a, s, b))
        )


class TestRefinedNestedDissection:
    def test_permutation(self):
        A = random_spd_sparse(200, density=0.03, seed=6)
        g = AdjacencyGraph.from_sparse(A)
        assert is_permutation(nested_dissection(g, refine=True))

    def test_fill_not_worse_on_average(self):
        """Refined ND should not systematically increase fill."""
        wins = 0
        for seed in (7, 8, 9):
            A = random_spd_sparse(160, density=0.04, seed=seed)
            g = AdjacencyGraph.from_sparse(A)
            base = symbolic_factor(A, nested_dissection(g)).factor_nnz
            ref = symbolic_factor(A, nested_dissection(g, refine=True)).factor_nnz
            wins += ref <= base * 1.05
        assert wins >= 2
