import numpy as np
import pytest
from scipy import sparse

from repro.matrices import read_matrix_market, write_matrix_market
from repro.matrices.spd import random_spd_sparse


class TestRoundTrip:
    def test_symmetric_roundtrip(self, tmp_path):
        A = random_spd_sparse(25, density=0.15, seed=0)
        path = tmp_path / "m.mtx"
        write_matrix_market(path, A, symmetric=True)
        B = read_matrix_market(path)
        assert abs(A - B).max() < 1e-14

    def test_general_roundtrip(self, tmp_path):
        rng = np.random.default_rng(1)
        A = sparse.random(10, 10, density=0.3, random_state=1).tocsc()
        path = tmp_path / "g.mtx"
        write_matrix_market(path, A, symmetric=False)
        B = read_matrix_market(path)
        assert abs(A - B).max() < 1e-14


class TestReader:
    def test_pattern_file(self, tmp_path):
        path = tmp_path / "p.mtx"
        path.write_text(
            "%%MatrixMarket matrix coordinate pattern symmetric\n"
            "3 3 3\n1 1\n2 1\n3 3\n"
        )
        A = read_matrix_market(path)
        assert A[0, 0] == 1 and A[1, 0] == 1 and A[0, 1] == 1 and A[2, 2] == 1

    def test_comment_lines_skipped(self, tmp_path):
        path = tmp_path / "c.mtx"
        path.write_text(
            "%%MatrixMarket matrix coordinate real general\n"
            "% a comment\n% another\n"
            "2 2 1\n2 1 5.0\n"
        )
        A = read_matrix_market(path)
        assert A[1, 0] == 5.0

    def test_rejects_bad_header(self, tmp_path):
        path = tmp_path / "bad.mtx"
        path.write_text("not a matrix\n1 1 0\n")
        with pytest.raises(ValueError):
            read_matrix_market(path)

    def test_rejects_unsupported_format(self, tmp_path):
        path = tmp_path / "arr.mtx"
        path.write_text("%%MatrixMarket matrix array real general\n2 2\n1\n2\n3\n4\n")
        with pytest.raises(ValueError):
            read_matrix_market(path)
