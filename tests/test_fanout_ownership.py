import numpy as np
import pytest

from repro.fanout import assign_domains, block_owners
from repro.mapping import ProcessorGrid, cyclic_map, square_grid


class TestBlockOwners:
    def test_matches_map_without_domains(self, grid12_pipeline):
        tg = grid12_pipeline[5]
        g = square_grid(4)
        cmap = cyclic_map(tg.npanels, g)
        owners = block_owners(tg, cmap)
        expect = cmap.owner_array(tg.block_I, tg.block_J)
        assert np.array_equal(owners, expect)

    def test_domain_columns_overridden(self, grid12_pipeline):
        wm, tg = grid12_pipeline[4], grid12_pipeline[5]
        g = square_grid(4)
        dom = assign_domains(wm, g.P)
        owners = block_owners(tg, cyclic_map(tg.npanels, g), dom)
        for b in range(tg.nblocks):
            j = int(tg.block_J[b])
            if dom.panel_owner[j] >= 0:
                assert owners[b] == dom.panel_owner[j]

    def test_rejects_wrong_panel_count(self, grid12_pipeline):
        tg = grid12_pipeline[5]
        with pytest.raises(ValueError):
            block_owners(tg, cyclic_map(tg.npanels + 1, square_grid(4)))
