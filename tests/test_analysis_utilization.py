import numpy as np
import pytest

from repro.analysis import utilization_profile
from repro.fanout import block_owners, simulate_fanout
from repro.mapping import ProcessorGrid, cyclic_map, square_grid


class TestUtilizationProfile:
    def _traced(self, tg, P=9):
        owners = block_owners(tg, cyclic_map(tg.npanels, square_grid(P)))
        return simulate_fanout(tg, owners, P, record_trace=True), P

    def test_mean_matches_busy_times(self, grid12_pipeline):
        tg = grid12_pipeline[5]
        res, P = self._traced(tg)
        prof = utilization_profile(res.trace, P, res.t_parallel)
        # trace covers compute time only (not send overhead), so the mean
        # utilization is at most the busy-time ratio
        busy_ratio = res.busy_times.sum() / (P * res.t_parallel)
        assert prof.mean_utilization <= busy_ratio + 1e-9
        assert 0 < prof.mean_utilization <= 1

    def test_fractions_in_range(self, grid12_pipeline):
        tg = grid12_pipeline[5]
        res, P = self._traced(tg)
        prof = utilization_profile(res.trace, P, res.t_parallel, nbins=20)
        assert prof.busy_fraction.shape == (20,)
        assert (prof.busy_fraction >= 0).all()
        assert (prof.busy_fraction <= 1).all()

    def test_kind_split_sums_to_trace(self, grid12_pipeline):
        tg = grid12_pipeline[5]
        res, P = self._traced(tg)
        prof = utilization_profile(res.trace, P, res.t_parallel)
        total = sum(prof.kind_seconds.values())
        traced = sum(end - start for _, start, end, _, _ in res.trace)
        assert total == pytest.approx(traced)
        # BMOD dominates the arithmetic
        assert prof.kind_seconds["BMOD"] >= prof.kind_seconds["BFAC"]

    def test_single_processor_fully_utilized(self, grid12_pipeline):
        tg = grid12_pipeline[5]
        owners = np.zeros(tg.nblocks, dtype=int)
        res = simulate_fanout(tg, owners, 1, record_trace=True)
        prof = utilization_profile(res.trace, 1, res.t_parallel)
        assert prof.mean_utilization == pytest.approx(1.0, abs=1e-9)

    def test_tail_utilization(self, grid12_pipeline):
        tg = grid12_pipeline[5]
        res, P = self._traced(tg, P=16)
        prof = utilization_profile(res.trace, 16, res.t_parallel)
        assert 0 <= prof.tail_utilization() <= 1

    def test_rejects_zero_end(self, grid12_pipeline):
        with pytest.raises(ValueError):
            utilization_profile([], 4, 0.0)
