import numpy as np
import pytest
from scipy import sparse

from repro.matrices import grid2d_matrix
from repro.matrices.spd import random_spd_sparse
from repro.symbolic import elimination_tree, etree_postorder, tree_depths
from repro.symbolic.etree import subtree_sizes


def etree_reference(A):
    """Parent of j = min{i > j : L[i,j] != 0} via dense factorization."""
    L = np.linalg.cholesky(A.toarray())
    n = A.shape[0]
    parent = np.full(n, -1)
    for j in range(n):
        below = np.flatnonzero(np.abs(L[j + 1 :, j]) > 1e-13)
        if below.size:
            parent[j] = j + 1 + below[0]
    return parent


class TestEliminationTree:
    def test_matches_dense_reference_grid(self):
        p = grid2d_matrix(6)
        assert np.array_equal(elimination_tree(p.A), etree_reference(p.A))

    def test_matches_dense_reference_random(self):
        A = random_spd_sparse(40, density=0.1, seed=0)
        assert np.array_equal(elimination_tree(A), etree_reference(A))

    def test_dense_matrix_is_path(self):
        A = sparse.csc_matrix(np.eye(6) * 10 + np.ones((6, 6)))
        parent = elimination_tree(A)
        assert parent.tolist() == [1, 2, 3, 4, 5, -1]

    def test_diagonal_matrix_is_forest_of_roots(self):
        A = sparse.eye(5).tocsc()
        assert (elimination_tree(A) == -1).all()


class TestPostorder:
    def test_is_permutation(self):
        from repro.util.arrays import is_permutation

        A = random_spd_sparse(50, density=0.08, seed=1)
        assert is_permutation(etree_postorder(elimination_tree(A)))

    def test_children_before_parents(self):
        A = random_spd_sparse(50, density=0.08, seed=2)
        parent = elimination_tree(A)
        post = etree_postorder(parent)
        pos = np.empty(parent.shape[0], dtype=int)
        pos[post] = np.arange(parent.shape[0])
        for j, p in enumerate(parent):
            if p != -1:
                assert pos[j] < pos[p]

    def test_subtrees_contiguous(self):
        A = random_spd_sparse(40, density=0.1, seed=3)
        parent = elimination_tree(A)
        post = etree_postorder(parent)
        pos = np.empty(parent.shape[0], dtype=int)
        pos[post] = np.arange(parent.shape[0])
        # after relabeling, each subtree occupies [first_desc, j]
        relabeled = np.full(parent.shape[0], -1)
        for j, p in enumerate(parent):
            if p != -1:
                relabeled[pos[j]] = pos[p]
        size = subtree_sizes(relabeled)
        for j in range(parent.shape[0]):
            # nodes j-size[j]+1 .. j all lie in j's subtree
            for k in range(j - int(size[j]) + 1, j + 1):
                anc = k
                while anc != j and anc != -1:
                    anc = relabeled[anc]
                assert anc == j

    def test_cycle_detection(self):
        with pytest.raises(ValueError):
            etree_postorder(np.array([1, 0]))


class TestDepthsAndSizes:
    def test_depths_path(self):
        parent = np.array([1, 2, 3, -1])
        assert tree_depths(parent).tolist() == [3, 2, 1, 0]

    def test_depths_requires_postorder(self):
        with pytest.raises(ValueError):
            tree_depths(np.array([-1, 0]))

    def test_sizes_star(self):
        parent = np.array([3, 3, 3, -1])
        assert subtree_sizes(parent).tolist() == [1, 1, 1, 4]
