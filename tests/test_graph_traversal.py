import numpy as np
from scipy import sparse

from repro.graph import AdjacencyGraph, bfs_levels, connected_components, pseudo_peripheral_node
from repro.matrices import grid2d_matrix


def path_graph(n):
    rows = np.arange(n - 1)
    A = sparse.coo_matrix((np.ones(n - 1), (rows, rows + 1)), shape=(n, n))
    return AdjacencyGraph.from_sparse(A + A.T)


def two_components(n1, n2):
    n = n1 + n2
    rows = np.concatenate([np.arange(n1 - 1), n1 + np.arange(n2 - 1)])
    cols = rows + 1
    A = sparse.coo_matrix((np.ones(rows.size), (rows, cols)), shape=(n, n))
    return AdjacencyGraph.from_sparse(A + A.T)


class TestBfsLevels:
    def test_path_distances(self):
        g = path_graph(6)
        lv = bfs_levels(g, 0)
        assert lv.tolist() == [0, 1, 2, 3, 4, 5]

    def test_unreachable(self):
        g = two_components(3, 3)
        lv = bfs_levels(g, 0)
        assert (lv[3:] == -1).all()

    def test_mask_blocks(self):
        g = path_graph(5)
        mask = np.array([True, True, False, True, True])
        lv = bfs_levels(g, 0, mask=mask)
        assert lv[1] == 1
        assert lv[3] == -1  # blocked by masked-out vertex 2

    def test_grid_distance(self):
        p = grid2d_matrix(5)
        g = AdjacencyGraph.from_sparse(p.A)
        lv = bfs_levels(g, 0)
        # 9-point stencil: Chebyshev distance
        assert lv[4 * 5 + 4] == 4


class TestConnectedComponents:
    def test_two(self):
        g = two_components(4, 3)
        comps = connected_components(g)
        sizes = sorted(c.shape[0] for c in comps)
        assert sizes == [3, 4]

    def test_partition(self):
        g = two_components(4, 5)
        comps = connected_components(g)
        allv = np.sort(np.concatenate(comps))
        assert allv.tolist() == list(range(9))

    def test_masked(self):
        g = path_graph(7)
        mask = np.ones(7, dtype=bool)
        mask[3] = False
        comps = connected_components(g, mask=mask)
        assert sorted(c.shape[0] for c in comps) == [3, 3]


class TestPseudoPeripheral:
    def test_path_ends(self):
        g = path_graph(9)
        node, levels = pseudo_peripheral_node(g, 4)
        assert node in (0, 8)
        assert levels.max() == 8

    def test_deterministic(self):
        p = grid2d_matrix(6)
        g = AdjacencyGraph.from_sparse(p.A)
        n1, _ = pseudo_peripheral_node(g, 17)
        n2, _ = pseudo_peripheral_node(g, 17)
        assert n1 == n2
