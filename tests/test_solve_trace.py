"""Traced solve runs replay exactly, and their skeleton is golden.

A traced factor+solve run carries four new span categories
(``solve_task``, ``solve_send``, ``solve_recv``, ``solve_idle``);
:func:`repro.analysis.trace_replay.replay_trace` recomputes the solve
busy/comm/idle split, per-worker solve work, and solve message/byte
ledgers from those spans, and ``validate_trace`` requires them to
reconcile exactly with :class:`~repro.runtime.metrics.RuntimeMetrics`
and the :func:`~repro.analysis.comm_volume.solve_communication_volume`
predictor.

The deterministic *shape* of the solve phase (which solve tasks ran on
which rank, which panels each rank sent and received) is pinned by a
golden skeleton at ``tests/golden/trace_skeleton_solve_grid12_p2.json``.
Regenerate after an intentional protocol change with::

    PYTHONPATH=src python tests/test_solve_trace.py --regen
"""

from __future__ import annotations

import json
import re
from pathlib import Path

import numpy as np
import pytest

from repro.analysis.comm_volume import solve_communication_volume
from repro.analysis.trace_replay import replay_trace, validate_trace
from repro.runtime import plan_owners, run_mp_fanout
from repro.runtime.trace import SPAN_CATEGORIES, RunTrace

GOLDEN = Path(__file__).parent / "golden" / (
    "trace_skeleton_solve_grid12_p2.json"
)

NRHS = 2

_SOLVE_TASK = re.compile(r"^(FSOLVE|FUPD|BSOLVE|BUPD)\((\d+)(?:,(\d+))?\)$")


def _rhs(n: int) -> np.ndarray:
    return np.random.default_rng(77).standard_normal((n, NRHS))


def _run_traced(pipeline, schedule="static"):
    _, sf, _, bs, wm, tg = pipeline
    owners, name = plan_owners(wm, tg, 2, "DW/CY", False)
    res = run_mp_fanout(
        bs, sf.A, tg, owners, 2, mapping=name, trace=True,
        schedule=schedule, rhs=_rhs(sf.A.shape[0]),
    )
    return res, tg, owners


def _solve_skeleton(trace) -> dict:
    """Deterministic shape of the solve phase: per-rank sorted
    solve_task/solve_send/solve_recv names + the run identity. No
    timestamps, no cross-worker interleaving, no idle spans."""
    per_rank: dict[str, dict[str, list[str]]] = {}
    for e in trace.events:
        if e.cat not in ("solve_task", "solve_send", "solve_recv"):
            continue
        lane = per_rank.setdefault(str(e.rank), {
            "solve_task": [], "solve_send": [], "solve_recv": [],
        })
        lane[e.cat].append(e.name)
    for lane in per_rank.values():
        for names in lane.values():
            names.sort()
    return {
        "problem": "GRID12 nd B=8",
        "nprocs": trace.meta.get("nprocs"),
        "mapping": trace.meta.get("mapping"),
        "nrhs": trace.meta.get("nrhs"),
        "per_rank": per_rank,
    }


@pytest.fixture(scope="module")
def traced_solve(grid12_pipeline):
    return _run_traced(grid12_pipeline)


class TestReplay:
    def test_solve_categories_registered(self):
        for cat in ("solve_task", "solve_send", "solve_recv",
                    "solve_idle"):
            assert cat in SPAN_CATEGORIES

    def test_replay_reconciles_with_metrics(self, traced_solve):
        """Bitwise-equal float sums and integer-exact ledgers, per
        worker, for the whole solve plane."""
        res, tg, owners = traced_solve
        rep = replay_trace(res.trace)
        assert rep.solved
        for w in res.metrics.workers:
            r = w.rank
            assert rep.solve_busy_s[r] == w.solve_busy_s
            assert rep.solve_comm_s[r] == w.solve_comm_s
            assert rep.solve_idle_s[r] == w.solve_idle_s
            assert int(rep.solve_tasks[r]) == w.solve_tasks_executed
            assert int(rep.solve_work[r]) == w.solve_work_executed
            assert rep.solve_task_counts[r] == w.solve_task_counts
            assert int(rep.solve_messages_sent[r]) == w.solve_messages_sent
            assert int(rep.solve_bytes_sent[r]) == w.solve_bytes_sent
            assert (
                int(rep.solve_messages_received[r])
                == w.solve_messages_received
            )
            assert (
                int(rep.solve_bytes_received[r])
                == w.solve_bytes_received
            )

    def test_replay_matches_predictor(self, traced_solve):
        res, tg, owners = traced_solve
        rep = replay_trace(res.trace)
        pred = solve_communication_volume(tg, owners, nrhs=NRHS)
        assert int(rep.solve_messages_sent.sum()) == pred.messages
        assert int(rep.solve_bytes_sent.sum()) == pred.bytes
        assert int(rep.solve_messages_received.sum()) == pred.messages
        assert int(rep.solve_bytes_received.sum()) == pred.bytes

    def test_validate_strict_includes_solve_check(self, traced_solve):
        res, tg, owners = traced_solve
        report = validate_trace(
            res.trace, metrics=res.metrics, tg=tg, owners=owners,
            strict=True,
        )
        assert report.ok, report.problems
        assert any("solve" in c for c in report.checks)

    def test_dynamic_schedule_validates_too(self, grid12_pipeline):
        """Work stealing perturbs the factor phase; the solve phase
        still replays and reconciles exactly."""
        res, tg, owners = _run_traced(grid12_pipeline, schedule="dynamic")
        report = validate_trace(
            res.trace, metrics=res.metrics, tg=tg, owners=owners,
            strict=True,
        )
        assert report.ok, report.problems

    def test_round_trip_preserves_solve_events(self, traced_solve,
                                               tmp_path):
        res, tg, owners = traced_solve
        path = tmp_path / "solve.trace.json"
        res.trace.dump(path)
        back = RunTrace.load(path)
        assert back.meta.get("nrhs") == NRHS
        rep = validate_trace(back, metrics=res.metrics, strict=True)
        assert rep.ok
        assert _solve_skeleton(back) == _solve_skeleton(res.trace)

    def test_chrome_export_carries_solve_spans(self, traced_solve):
        res, tg, owners = traced_solve
        doc = res.trace.to_chrome()
        cats = {
            e.get("cat") for e in doc["traceEvents"]
            if e.get("ph") == "X"
        }
        assert "solve_task" in cats
        assert "solve_send" in cats or "solve_recv" in cats


class TestGoldenSkeleton:
    def test_skeleton_matches_golden(self, traced_solve):
        res, tg, owners = traced_solve
        assert GOLDEN.exists(), (
            f"golden solve skeleton missing; regenerate with "
            f"PYTHONPATH=src python {__file__} --regen"
        )
        want = json.loads(GOLDEN.read_text())
        got = _solve_skeleton(res.trace)
        assert got == want

    def test_forward_before_backward_per_panel(self, traced_solve):
        """Per rank: FSOLVE(k) precedes BSOLVE(k), and any FUPD out of
        panel k follows FSOLVE(k) when both ran on the same rank."""
        res, tg, owners = traced_solve
        for rank, events in res.trace.per_worker(0).items():
            tasks = [
                e.name for e in events if e.cat == "solve_task"
            ]
            pos = {name: i for i, name in enumerate(tasks)}
            for name, i in pos.items():
                kind, a, b = _SOLVE_TASK.match(name).group(1, 2, 3)
                if kind == "BSOLVE" and f"FSOLVE({a})" in pos:
                    assert pos[f"FSOLVE({a})"] < i
                if kind == "FUPD" and f"FSOLVE({b})" in pos:
                    assert pos[f"FSOLVE({b})"] < i


def _regen() -> None:
    from repro.blocks import BlockPartition, BlockStructure, WorkModel
    from repro.fanout import TaskGraph
    from repro.matrices import grid2d_matrix
    from repro.ordering import order_problem
    from repro.symbolic import symbolic_factor

    problem = grid2d_matrix(12)
    sf = symbolic_factor(problem.A, order_problem(problem, "nd"))
    part = BlockPartition(sf, 8)
    bs = BlockStructure(part)
    wm = WorkModel(bs)
    tg = TaskGraph(wm)
    res, _, _ = _run_traced((problem, sf, part, bs, wm, tg))
    GOLDEN.parent.mkdir(exist_ok=True)
    GOLDEN.write_text(
        json.dumps(_solve_skeleton(res.trace), indent=2) + "\n"
    )
    print(f"wrote {GOLDEN}")


if __name__ == "__main__":
    import sys

    if "--regen" in sys.argv:
        _regen()
    else:
        print(__doc__)
