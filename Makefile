PYTHON ?= python
SCALE ?= medium

.PHONY: install test bench bench-runtime experiments examples clean

install:
	pip install -e . --no-build-isolation

# Mirrors the tier-1 CI command; pyproject's pythonpath=["src"] makes a
# bare pytest work without an editable install.
test:
	$(PYTHON) -m pytest -x -q

bench:
	REPRO_SCALE=$(SCALE) $(PYTHON) -m pytest benchmarks/ --benchmark-only

bench-runtime:
	$(PYTHON) scripts/bench_runtime.py --scale $(SCALE)

experiments:
	$(PYTHON) scripts/run_all_experiments.py $(SCALE)

examples:
	$(PYTHON) examples/quickstart.py
	$(PYTHON) examples/structural_analysis.py
	$(PYTHON) examples/mapping_study.py
	$(PYTHON) examples/pde_scaling.py
	$(PYTHON) examples/solver_api.py

clean:
	rm -rf build dist *.egg-info src/*.egg-info .pytest_cache
	find . -name __pycache__ -type d -exec rm -rf {} +
