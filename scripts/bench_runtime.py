#!/usr/bin/env python
"""Seed the real-execution perf trajectory: run the message-passing runtime
on benchmark problems, cyclic vs DW remapping, nprocs in {2, 4}, and write
wall-clock plus per-worker imbalance to BENCH_runtime.json.

Usage: python scripts/bench_runtime.py [--scale small|medium|paper]
       [--problems GRID150,BCSSTK15] [--nprocs 2,4] [--out BENCH_runtime.json]
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.experiments.pipeline import prepare_problem  # noqa: E402
from repro.runtime import plan_owners, run_mp_fanout  # noqa: E402

DEFAULT_PROBLEMS = ("GRID150", "BCSSTK15")
DEFAULT_NPROCS = (2, 4)
MAPPINGS = ("cyclic", "DW/CY")


def bench_one(
    prep, nprocs: int, mapping: str, repeats: int, trace_out: str | None = None
) -> dict:
    owners, name = plan_owners(prep.workmodel, prep.taskgraph, nprocs, mapping)
    best = None
    for _ in range(repeats):
        res = run_mp_fanout(
            prep.structure, prep.symbolic.A, prep.taskgraph, owners, nprocs,
            mapping=name, record_timeline=False, trace=bool(trace_out),
        )
        if best is None or res.metrics.wall_s < best.metrics.wall_s:
            best = res
    if trace_out and best.trace is not None:
        slug = f"{prep.name}.p{nprocs}.{name.replace('/', '-').lower()}"
        root, dot, ext = trace_out.rpartition(".")
        path = f"{root}.{slug}.{ext}" if dot else f"{trace_out}.{slug}"
        best.trace.meta["problem"] = prep.name
        best.trace.dump(path)
        print(f"  trace written to {path}")
    met = best.metrics
    L = best.to_csc()
    residual = float(abs(L @ L.T - prep.symbolic.A).max())
    return {
        "mapping": name,
        "nprocs": nprocs,
        "wall_s": met.wall_s,
        "residual": residual,
        "messages": met.messages_total,
        "bytes": met.bytes_total,
        "work_balance": met.work_balance,
        "work_imbalance": met.work_imbalance,
        "measured_balance": met.measured_balance,
        "busy_imbalance": met.imbalance,
        "per_worker_busy_s": [w.busy_s for w in met.workers],
        "per_worker_work": [w.work_executed for w in met.workers],
    }


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--scale", default="small",
                    choices=("small", "medium", "paper"))
    ap.add_argument("--problems", default=",".join(DEFAULT_PROBLEMS))
    ap.add_argument("--nprocs", default=",".join(map(str, DEFAULT_NPROCS)))
    ap.add_argument("--block-size", type=int, default=32)
    ap.add_argument("--repeats", type=int, default=3,
                    help="take the best wall clock of N runs")
    ap.add_argument("--out", default=str(
        Path(__file__).resolve().parent.parent / "BENCH_runtime.json"
    ))
    ap.add_argument("--trace-out", default=None, metavar="PATH",
                    help="also record structured traces (best run per "
                         "configuration), named PATH with a "
                         "problem/P/mapping slug inserted")
    args = ap.parse_args(argv)

    problems = [p.strip() for p in args.problems.split(",") if p.strip()]
    nprocs_list = [int(p) for p in args.nprocs.split(",")]
    report = {
        "benchmark": "runtime",
        "scale": args.scale,
        "block_size": args.block_size,
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "python": platform.python_version(),
        "cpu_count": os.cpu_count(),
        "runs": [],
    }
    for name in problems:
        prep = prepare_problem(name, args.scale, args.block_size)
        entry = {
            "problem": prep.name,
            "n": prep.problem.n,
            "npanels": prep.partition.npanels,
            "ntasks": prep.taskgraph.ntasks,
            "results": [],
        }
        for nprocs in nprocs_list:
            for mapping in MAPPINGS:
                r = bench_one(
                    prep, nprocs, mapping, args.repeats,
                    trace_out=args.trace_out,
                )
                entry["results"].append(r)
                print(
                    f"{prep.name:<10s} P={nprocs} {r['mapping']:<8s} "
                    f"wall={r['wall_s'] * 1e3:8.1f} ms "
                    f"work_imbalance={r['work_imbalance']:.3f} "
                    f"msgs={r['messages']}"
                )
        # The paper's headline, measured on real execution.
        for nprocs in nprocs_list:
            rs = {r["mapping"]: r for r in entry["results"]
                  if r["nprocs"] == nprocs}
            cyc, dw = rs.get("cyclic"), rs.get("DW/CY")
            if cyc and dw:
                print(
                    f"  -> P={nprocs}: DW work_imbalance "
                    f"{dw['work_imbalance']:.3f} vs cyclic "
                    f"{cyc['work_imbalance']:.3f} "
                    f"({'better' if dw['work_imbalance'] <= cyc['work_imbalance'] else 'WORSE'})"
                )
        report["runs"].append(entry)

    with open(args.out, "w") as fh:
        json.dump(report, fh, indent=2)
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
