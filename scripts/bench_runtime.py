#!/usr/bin/env python
"""Seed the real-execution perf trajectory: run the message-passing runtime
on benchmark problems, cyclic vs DW remapping, inline vs shared-memory
transport, nprocs in {2, 4}, and write wall-clock plus per-worker imbalance
to BENCH_runtime.json.

Methodology notes (see docs/PERFORMANCE.md):

* wall times are the best of ``--repeat N`` runs (min-of-N filters scheduler
  noise on shared machines);
* the report records both ``os.cpu_count()`` and the *affinity-visible* CPU
  count — on cgroup-limited containers they disagree, and any run with more
  workers than affinity slots is flagged ``oversubscribed`` (its wall times
  measure time-sliced, not parallel, execution);
* each result row carries its ``transport`` and both byte counters:
  ``bytes`` (logical — what the static predictor charges) and
  ``wire_bytes`` (actually transported; 64 per data message on shm);
* the ``--schedules`` sweep runs each configuration under the static
  owner-computes map and the dynamic work-stealing schedule; rows carry
  ``schedule``, trace-free idle time (``idle_s``) and the migration
  counters (``tasks_migrated``, ``steal_bytes``) so the static-vs-dynamic
  comparison is honest about what stealing bought and what it cost;
* the ``--block-policies`` sweep benches each problem once per blocking
  policy (uniform fixed-width panels vs structure-aware supernodal
  panels); each (problem, policy) entry carries a ``blocking`` geometry
  report — median/max dgemm tile area, median inner dimension, arena
  padding-waste % — and a headline compares the policies' geometry and
  wall clocks side by side.

Usage: python scripts/bench_runtime.py [--scale small|medium|paper]
       [--problems GRID150,BCSSTK15] [--nprocs 2,4] [--repeat 3]
       [--transports inline,shm] [--schedules static,dynamic]
       [--block-policies uniform,supernodal] [--out BENCH_runtime.json]
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.analysis.blocking import blocking_report  # noqa: E402
from repro.experiments.pipeline import prepare_problem  # noqa: E402
from repro.runtime import (  # noqa: E402
    plan_owners,
    run_mp_fanout,
    shm_available,
)

DEFAULT_PROBLEMS = ("GRID150", "BCSSTK15")
DEFAULT_NPROCS = (2, 4)
MAPPINGS = ("cyclic", "DW/CY")


def affinity_cpus() -> int | None:
    """CPUs this process may actually run on (None where unsupported)."""
    try:
        return len(os.sched_getaffinity(0))
    except (AttributeError, OSError):  # pragma: no cover - non-Linux
        return None


def bench_one(
    prep, nprocs: int, mapping: str, transport: str, repeats: int,
    oversubscribed: bool, trace_out: str | None = None,
    schedule: str = "static",
) -> dict:
    owners, name = plan_owners(prep.workmodel, prep.taskgraph, nprocs, mapping)
    best = None
    for _ in range(repeats):
        res = run_mp_fanout(
            prep.structure, prep.symbolic.A, prep.taskgraph, owners, nprocs,
            mapping=name, record_timeline=False, trace=bool(trace_out),
            transport=transport, schedule=schedule,
        )
        if best is None or res.metrics.wall_s < best.metrics.wall_s:
            best = res
    if trace_out and best.trace is not None:
        slug = (f"{prep.name}.p{nprocs}.{name.replace('/', '-').lower()}"
                f".{best.metrics.transport}.{schedule}")
        root, dot, ext = trace_out.rpartition(".")
        path = f"{root}.{slug}.{ext}" if dot else f"{trace_out}.{slug}"
        best.trace.meta["problem"] = prep.name
        best.trace.dump(path)
        print(f"  trace written to {path}")
    met = best.metrics
    L = best.to_csc()
    residual = float(abs(L @ L.T - prep.symbolic.A).max())
    return {
        "mapping": name,
        "nprocs": nprocs,
        "transport": met.transport,
        "schedule": met.schedule,
        "oversubscribed": oversubscribed,
        "repeats": repeats,
        "wall_s": met.wall_s,
        "residual": residual,
        "messages": met.messages_total,
        "bytes": met.bytes_total,
        "wire_bytes": met.wire_bytes_total,
        "work_balance": met.work_balance,
        "work_imbalance": met.work_imbalance,
        "measured_balance": met.measured_balance,
        "busy_imbalance": met.imbalance,
        "idle_s": met.idle_total_s,
        "tasks_migrated": met.tasks_stolen_total,
        "steal_requests": met.steal_reqs_total,
        "steal_bytes": met.steal_bytes_total,
        "per_worker_busy_s": [w.busy_s for w in met.workers],
        "per_worker_work": [w.work_executed for w in met.workers],
    }


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--scale", default="small",
                    choices=("small", "medium", "paper"))
    ap.add_argument("--problems", default=",".join(DEFAULT_PROBLEMS))
    ap.add_argument("--nprocs", default=",".join(map(str, DEFAULT_NPROCS)))
    ap.add_argument("--block-size", type=int, default=32)
    ap.add_argument("--repeat", "--repeats", dest="repeats", type=int,
                    default=3, metavar="N",
                    help="take the best wall clock of N runs")
    ap.add_argument("--transports", default=None,
                    help="comma-separated transports to sweep "
                         "(default: inline,shm when shared memory is "
                         "available, else inline)")
    ap.add_argument("--schedules", default="static,dynamic",
                    help="comma-separated execution schedules to sweep "
                         "(static, dynamic)")
    ap.add_argument("--block-policies", default="uniform",
                    help="comma-separated blocking policies to sweep "
                         "(uniform, supernodal); with both, each problem "
                         "is benched per policy and a geometry headline "
                         "(median dgemm tile area, arena padding waste) "
                         "compares them side by side")
    ap.add_argument("--out", default=str(
        Path(__file__).resolve().parent.parent / "BENCH_runtime.json"
    ))
    ap.add_argument("--trace-out", default=None, metavar="PATH",
                    help="also record structured traces (best run per "
                         "configuration), named PATH with a "
                         "problem/P/mapping/transport slug inserted")
    args = ap.parse_args(argv)

    problems = [p.strip() for p in args.problems.split(",") if p.strip()]
    nprocs_list = [int(p) for p in args.nprocs.split(",")]
    if args.transports:
        transports = [t.strip() for t in args.transports.split(",")
                      if t.strip()]
    else:
        transports = ["inline", "shm"] if shm_available() else ["inline"]
    schedules = [s.strip() for s in args.schedules.split(",") if s.strip()]
    for s in schedules:
        if s not in ("static", "dynamic"):
            ap.error(f"unknown schedule {s!r}")
    bpolicies = [b.strip() for b in args.block_policies.split(",")
                 if b.strip()]
    for b in bpolicies:
        if b not in ("uniform", "supernodal"):
            ap.error(f"unknown block policy {b!r}")

    affinity = affinity_cpus()
    usable = affinity if affinity is not None else os.cpu_count()
    report = {
        "benchmark": "runtime",
        "scale": args.scale,
        "block_size": args.block_size,
        "repeats": args.repeats,
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "python": platform.python_version(),
        "cpu_count": os.cpu_count(),
        "affinity_cpus": affinity,
        "transports": transports,
        "schedules": schedules,
        "block_policies": bpolicies,
        # Top-level oversubscription verdict: True when ANY benched
        # configuration ran more workers than affinity-visible CPUs.
        # Consumers must check this before reading wall-clock "speedups"
        # — oversubscribed numbers measure time-slicing, not parallelism.
        "oversubscribed": (
            usable is not None and max(nprocs_list) > usable
        ),
        "usable_cpus": usable,
        "runs": [],
    }
    if report["oversubscribed"]:
        print(f"WARNING: benching up to {max(nprocs_list)} workers on "
              f"{usable} affinity-visible CPUs — oversubscribed runs "
              f"measure time-sliced execution, not parallel speedup; "
              f"BENCH_runtime.json is marked oversubscribed=true",
              file=sys.stderr)
    for name in problems:
      entries_by_policy = {}
      for bpolicy in bpolicies:
        prep = prepare_problem(name, args.scale, args.block_size,
                               block_policy=bpolicy)
        geometry = blocking_report(prep.taskgraph)
        entry = {
            "problem": prep.name,
            "n": prep.problem.n,
            "npanels": prep.partition.npanels,
            "ntasks": prep.taskgraph.ntasks,
            "block_policy": bpolicy,
            "blocking": geometry,
            "results": [],
        }
        entries_by_policy[bpolicy] = entry
        print(f"{prep.name} [{bpolicy}]: {prep.partition.npanels} panels, "
              f"median dgemm tile "
              f"{geometry['tiles']['median_tile_mn']:.0f} "
              f"(max {geometry['tiles']['max_tile_mn']}), "
              f"arena padding {geometry['arena']['padding_pct']:.2f}%")
        for nprocs in nprocs_list:
            over = usable is not None and nprocs > usable
            for mapping in MAPPINGS:
                for transport in transports:
                    for schedule in schedules:
                        r = bench_one(
                            prep, nprocs, mapping, transport, args.repeats,
                            oversubscribed=over, trace_out=args.trace_out,
                            schedule=schedule,
                        )
                        r["block_policy"] = bpolicy
                        entry["results"].append(r)
                        print(
                            f"{prep.name:<10s} [{bpolicy}] "
                            f"P={nprocs} {r['mapping']:<8s} "
                            f"{r['transport']:<6s} {r['schedule']:<7s} "
                            f"wall={r['wall_s'] * 1e3:8.1f} ms "
                            f"idle={r['idle_s'] * 1e3:7.1f} ms "
                            f"work_imbalance={r['work_imbalance']:.3f} "
                            f"msgs={r['messages']} "
                            f"steals={r['tasks_migrated']} "
                            f"wire={r['wire_bytes'] / 1e6:.2f} MB"
                            + (" [oversubscribed]" if over else "")
                        )
        # The paper's headline, measured on real execution.
        for nprocs in nprocs_list:
            rs = {(r["mapping"], r["transport"], r["schedule"]): r
                  for r in entry["results"] if r["nprocs"] == nprocs}
            cyc = rs.get(("cyclic", transports[0], schedules[0]))
            dw = rs.get(("DW/CY", transports[0], schedules[0]))
            if cyc and dw:
                print(
                    f"  -> P={nprocs}: DW work_imbalance "
                    f"{dw['work_imbalance']:.3f} vs cyclic "
                    f"{cyc['work_imbalance']:.3f} "
                    f"({'better' if dw['work_imbalance'] <= cyc['work_imbalance'] else 'WORSE'})"
                )
            # The transport headline: shm vs inline wall time per mapping.
            for mapping in MAPPINGS:
                a = rs.get((mapping, "inline", schedules[0]))
                b = rs.get((mapping, "shm", schedules[0]))
                if a and b:
                    speedup = a["wall_s"] / b["wall_s"] if b["wall_s"] else 0
                    print(
                        f"  -> P={nprocs} {mapping}: shm "
                        f"{b['wall_s'] * 1e3:.1f} ms vs inline "
                        f"{a['wall_s'] * 1e3:.1f} ms "
                        f"({speedup:.2f}x, wire bytes "
                        f"{b['wire_bytes']} vs {a['wire_bytes']})"
                    )
            # The scheduling headline: dynamic vs static idle time per
            # mapping on the first transport.
            if "static" in schedules and "dynamic" in schedules:
                for mapping in MAPPINGS:
                    st = rs.get((mapping, transports[0], "static"))
                    dy = rs.get((mapping, transports[0], "dynamic"))
                    if st and dy:
                        print(
                            f"  -> P={nprocs} {mapping}: dynamic idle "
                            f"{dy['idle_s'] * 1e3:.1f} ms vs static "
                            f"{st['idle_s'] * 1e3:.1f} ms "
                            f"({dy['tasks_migrated']} migrations, "
                            f"{dy['steal_bytes'] / 1e3:.1f} kB steal "
                            f"traffic; wall {dy['wall_s'] * 1e3:.1f} vs "
                            f"{st['wall_s'] * 1e3:.1f} ms)"
                        )
        report["runs"].append(entry)
      if len(bpolicies) > 1:
        uni = entries_by_policy.get("uniform")
        sup = entries_by_policy.get("supernodal")
        if uni and sup:
            ug, sg = uni["blocking"], sup["blocking"]
            print(
                f"  -> {name} geometry: median dgemm tile "
                f"{sg['tiles']['median_tile_mn']:.0f} supernodal vs "
                f"{ug['tiles']['median_tile_mn']:.0f} uniform "
                f"({'bigger' if sg['tiles']['median_tile_mn'] > ug['tiles']['median_tile_mn'] else 'NOT bigger'}); "
                f"arena padding {sg['arena']['padding_pct']:.2f}% vs "
                f"{ug['arena']['padding_pct']:.2f}% "
                f"({'smaller' if sg['arena']['padding_pct'] < ug['arena']['padding_pct'] else 'NOT smaller'})"
            )
            for nprocs in nprocs_list:
                key = (nprocs, "DW/CY", transports[0], schedules[0])
                pick = lambda e: next(
                    (r for r in e["results"]
                     if (r["nprocs"], r["mapping"], r["transport"],
                         r["schedule"]) == key), None)
                a, b = pick(uni), pick(sup)
                if a and b:
                    print(
                        f"  -> {name} P={nprocs} DW/CY wall: supernodal "
                        f"{b['wall_s'] * 1e3:.1f} ms vs uniform "
                        f"{a['wall_s'] * 1e3:.1f} ms"
                        + (" [oversubscribed]" if a["oversubscribed"]
                           or b["oversubscribed"] else "")
                    )

    with open(args.out, "w") as fh:
        json.dump(report, fh, indent=2)
    print(f"wrote {args.out}")
    if report["oversubscribed"]:
        print("WARNING: report is flagged oversubscribed=true — treat "
              "wall-clock comparisons as untrustworthy on this machine",
              file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
