#!/usr/bin/env python
"""Run every experiment at a given scale and write results/ text files.

Usage: python scripts/run_all_experiments.py [scale] [--skip-table5]

Writes one text file per experiment under results/<scale>/ plus a combined
summary (results/<scale>/ALL.txt) suitable for pasting into EXPERIMENTS.md.
"""

from __future__ import annotations

import sys
import time
from pathlib import Path


def main() -> None:
    args = [a for a in sys.argv[1:] if not a.startswith("--")]
    scale = args[0] if args else "medium"
    skip5 = "--skip-table5" in sys.argv

    from repro.experiments import figure1, table1, table2, table3, table4
    from repro.experiments import table5, table6, table7
    from repro.experiments import alt_heuristic, prime_grids
    from repro.experiments import dense_study, variable_block
    from repro.experiments.oned_comparison import (
        run_critical_path_scaling,
        run_performance,
        run_volume_scaling,
    )
    from repro.experiments.ablations import (
        run_block_size,
        run_contention,
        run_domains_ablation,
        run_zero_comm,
    )
    from repro.experiments.discussion import (
        run_critical_path,
        run_priority_scheduling,
        run_subcube,
    )

    jobs = [
        ("table1", lambda: table1.run(scale), "{:.1f}"),
        ("table6", lambda: table6.run(scale), "{:.1f}"),
        ("table2", lambda: table2.run(scale), "{:.2f}"),
        ("table3", lambda: table3.run(scale), "{:.2f}"),
        ("figure1", lambda: figure1.run(scale), "{:.3f}"),
        ("table4", lambda: table4.run(scale), "{:.0f}"),
        ("table7", lambda: table7.run(scale), "{:.0f}"),
        ("prime_grids", lambda: prime_grids.run(scale), "{:.0f}"),
        ("alt_heuristic", lambda: alt_heuristic.run(scale), "{:.2f}"),
        ("critical_path", lambda: run_critical_path(scale), "{:.3f}"),
        ("subcube", lambda: run_subcube(scale), "{:.2f}"),
        ("priority", lambda: run_priority_scheduling(scale), "{:.1f}"),
        ("ablation_blocksize", lambda: run_block_size(scale), "{:.2f}"),
        ("ablation_domains", lambda: run_domains_ablation(scale), "{:.2f}"),
        ("ablation_zerocomm", lambda: run_zero_comm(scale), "{:.3f}"),
        ("ablation_contention", lambda: run_contention(scale), "{:.2f}"),
        ("variable_block", lambda: variable_block.run(scale), "{:.2f}"),
        ("dense_study", lambda: dense_study.run(scale), "{:.0f}"),
        ("oned_volume", lambda: run_volume_scaling(scale), "{:.2f}"),
        ("oned_critical_path", lambda: run_critical_path_scaling(), "{:.2f}"),
        ("oned_performance", lambda: run_performance(scale), "{:.1f}"),
    ]
    if not skip5:
        jobs.insert(7, ("table5", lambda: table5.run(scale), "{:.0f}"))

    outdir = Path("results") / scale
    outdir.mkdir(parents=True, exist_ok=True)
    combined = []
    for name, job, fmt in jobs:
        t0 = time.time()
        res = job()
        rendered = res.render(fmt)
        wall = time.time() - t0
        (outdir / f"{name}.txt").write_text(rendered + "\n")
        (outdir / f"{name}.json").write_text(res.to_json() + "\n")
        combined.append(rendered + f"\n[{wall:.1f}s]\n")
        print(f"== {name} ({wall:.1f}s)")
        print(rendered)
        print()
    (outdir / "ALL.txt").write_text("\n".join(combined))
    print(f"written to {outdir}/")


if __name__ == "__main__":
    main()
